//! Self-healing primitives for the sharded serving runtime: checkpoint
//! store, write-ahead journal, retry policy, population prior and the
//! PTTA circuit breaker.
//!
//! The [`ShardedEngine`](crate::engine::ShardedEngine) is fail-stop by
//! default: a shard that panics takes its users' state (sliding windows)
//! down with it and every later request surfaces a typed
//! [`EngineError`](crate::engine::EngineError). Enabling
//! [`RecoveryConfig`] on [`EngineConfig`](crate::engine::EngineConfig)
//! layers three mechanisms on top, all built here:
//!
//! 1. **Checkpoint + journal.** Each shard periodically snapshots its
//!    per-user windows into an in-memory [`CheckpointStore`] (PTTA is
//!    stateless per prediction — adapted columns are recomputed from the
//!    window each time — so the window *is* the whole per-user state; the
//!    frozen Θ baseline lives in the shared read-only
//!    [`ParamStore`](adamove_autograd::ParamStore)). Between checkpoints
//!    a bounded write-ahead [`Journal`] records every accepted observe.
//!    Recovery = restore the checkpoint, replay the journal suffix, and
//!    the rebuilt shard is bit-identical by construction: journal ids are
//!    assigned in queue order, replay preserves that order, and window
//!    eviction is idempotent under monotone query times.
//! 2. **Supervision + retries.** A supervisor detects worker death and
//!    respawns the shard; in-flight `ShardDown`/`Timeout` requests are
//!    retried under a bounded, jitter-free [`RetryPolicy`] so the fault
//!    schedule (and hence the test suite) stays deterministic.
//! 3. **Graceful degradation.** When recovery is impossible (no
//!    checkpoint, journal overflow) the shard serves population-prior
//!    predictions from [`PopulationPrior`] — the globally most frequent
//!    locations — tagged
//!    [`PredictionQuality::Degraded`](crate::streaming::PredictionQuality)
//!    instead of erroring. Independently, a per-user [`PttaBreaker`]
//!    watches the `ptta_entropy_millinats` drift signal: on sustained
//!    entropy spikes it rolls the served prediction back to the frozen Θ
//!    classifier and pauses adaptation until a probe shows the signal has
//!    settled.

use adamove_mobility::{LocationId, Point, UserId};
use adamove_obs::{lock, Counter, Registry};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Bounded exponential backoff, jitter-free so retry schedules are
/// deterministic and reproducible in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (`0` disables retrying).
    pub max_retries: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Multiplier applied per retry (attempt `k` waits
    /// `base_delay * multiplier^k`, capped at `max_delay`).
    pub multiplier: u32,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    /// Three retries at 1 ms, 2 ms, 4 ms.
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_delay: Duration::from_millis(1),
            multiplier: 2,
            max_delay: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// No retries at all: errors surface on the first failure.
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            ..Self::default()
        }
    }

    /// Delay before retry number `attempt` (0-based):
    /// `base_delay * multiplier^attempt`, saturating, capped at
    /// `max_delay`. No jitter by design.
    pub fn delay(&self, attempt: u32) -> Duration {
        let mut d = self.base_delay;
        for _ in 0..attempt {
            d = d
                .checked_mul(self.multiplier.max(1))
                .unwrap_or(self.max_delay);
            if d >= self.max_delay {
                return self.max_delay;
            }
        }
        d.min(self.max_delay)
    }
}

/// Self-healing settings for a
/// [`ShardedEngine`](crate::engine::ShardedEngine) — set on
/// [`EngineConfig::recovery`](crate::engine::EngineConfig). The default
/// engine (`recovery: None`) keeps the original fail-stop semantics.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Requests between shard checkpoints. `0` disables checkpointing
    /// entirely: a killed shard can then only recover into degraded
    /// (population-prior) serving.
    pub checkpoint_interval: usize,
    /// Maximum journalled observes per shard. When the journal wraps past
    /// the last checkpoint, exact replay is impossible and recovery
    /// degrades gracefully instead.
    pub journal_capacity: usize,
    /// Backoff for transparently retried `ShardDown`/`Timeout` requests.
    pub retry: RetryPolicy,
    /// Per-user PTTA circuit breaker on the entropy drift signal; `None`
    /// leaves adaptation always on.
    pub breaker: Option<BreakerConfig>,
    /// Poll interval of the background supervisor thread that respawns
    /// dead shards even without traffic. `None` heals lazily, on the
    /// first request that finds the shard dead.
    pub supervise_interval: Option<Duration>,
    /// Opt-in crash-safe persistence: when set, the journal and
    /// checkpoints are mirrored to disk (see [`crate::durability`]) and
    /// the engine cold-starts from the newest durable state. `None`
    /// keeps the original RAM-only recovery semantics.
    pub durability: Option<crate::durability::DurabilityConfig>,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            checkpoint_interval: 64,
            journal_capacity: 4096,
            retry: RetryPolicy::default(),
            breaker: None,
            supervise_interval: None,
            durability: None,
        }
    }
}

/// One shard's snapshot: the per-user sliding windows as of journal
/// position `last_seen`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCheckpoint {
    /// Highest journal id covered by this checkpoint; replay resumes
    /// with ids strictly greater.
    pub last_seen: u64,
    /// Every user's buffered window points, chronological per user.
    pub users: Vec<(UserId, Vec<Point>)>,
}

/// In-memory checkpoint storage, one slot per shard. The last checkpoint
/// wins; [`CheckpointStore::load`] clones it out for restore.
#[derive(Debug)]
pub struct CheckpointStore {
    slots: Vec<Mutex<Option<ShardCheckpoint>>>,
}

impl CheckpointStore {
    /// Empty store with one slot per shard.
    pub fn new(shards: usize) -> Self {
        Self {
            slots: (0..shards.max(1)).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Replace `shard`'s checkpoint.
    pub fn save(&self, shard: usize, checkpoint: ShardCheckpoint) {
        *lock(&self.slots[shard]) = Some(checkpoint);
    }

    /// Clone out `shard`'s latest checkpoint, if any.
    pub fn load(&self, shard: usize) -> Option<ShardCheckpoint> {
        lock(&self.slots[shard]).clone()
    }

    /// True when `shard` has a checkpoint.
    pub fn has(&self, shard: usize) -> bool {
        lock(&self.slots[shard]).is_some()
    }

    /// Drop `shard`'s checkpoint.
    pub fn clear(&self, shard: usize) {
        *lock(&self.slots[shard]) = None;
    }
}

/// One journalled observe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Monotone per-shard id, assigned in queue order (first id is 1).
    pub id: u64,
    /// The observed user.
    pub user: UserId,
    /// The observed check-in.
    pub point: Point,
}

/// Bounded write-ahead journal of accepted observes for one shard.
/// Appends happen at enqueue time under the shard's send lock, so id
/// order equals queue order and a replay reproduces exactly what the
/// dead worker would have processed.
#[derive(Debug)]
pub struct Journal {
    entries: VecDeque<JournalEntry>,
    capacity: usize,
    next_id: u64,
    /// Highest id evicted by overflow (0 = nothing ever dropped). Replay
    /// from a base at or past this watermark is complete; below it, some
    /// observes are unrecoverable.
    dropped_through: u64,
}

impl Journal {
    /// Empty journal holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
            next_id: 1,
            dropped_through: 0,
        }
    }

    /// Rebuild a journal from durable state at cold start. `entries`
    /// must be id-ascending; entries beyond `capacity` are evicted
    /// oldest-first exactly as live appends would have done, raising
    /// `dropped_through`. `next_id` is clamped so no recovered (or
    /// possibly-on-disk) id is ever reissued.
    pub fn restore(
        capacity: usize,
        entries: Vec<JournalEntry>,
        next_id: u64,
        dropped_through: u64,
    ) -> Self {
        let capacity = capacity.max(1);
        let mut dropped_through = dropped_through;
        let mut deque: VecDeque<JournalEntry> =
            VecDeque::with_capacity(capacity.min(entries.len()));
        for e in entries {
            if deque.len() == capacity {
                if let Some(evicted) = deque.pop_front() {
                    dropped_through = dropped_through.max(evicted.id);
                }
            }
            deque.push_back(e);
        }
        let floor = deque.back().map_or(0, |e| e.id).saturating_add(1);
        Self {
            entries: deque,
            capacity,
            next_id: next_id.max(floor).max(1),
            dropped_through,
        }
    }

    /// Append an observe; returns its id and whether the append evicted
    /// the oldest entry (overflow).
    pub fn append(&mut self, user: UserId, point: Point) -> (u64, bool) {
        let id = self.next_id;
        self.next_id += 1;
        let mut overflowed = false;
        if self.entries.len() == self.capacity {
            // `capacity >= 1`, so a full deque always has a front; the
            // `if let` keeps this total without a panic path.
            if let Some(evicted) = self.entries.pop_front() {
                self.dropped_through = evicted.id;
                overflowed = true;
            }
        }
        self.entries.push_back(JournalEntry { id, user, point });
        (id, overflowed)
    }

    /// Undo an [`Journal::append`] whose request never reached the shard
    /// queue (send failed). Only the most recent entry can be retracted;
    /// anything else is a no-op.
    pub fn retract(&mut self, id: u64) {
        if self.entries.back().is_some_and(|e| e.id == id) {
            self.entries.pop_back();
        }
    }

    /// Drop every entry with id `<= through` — called after a checkpoint
    /// covering those observes.
    pub fn prune_through(&mut self, through: u64) {
        while self.entries.front().is_some_and(|e| e.id <= through) {
            self.entries.pop_front();
        }
    }

    /// Entries with id strictly greater than `after`, in id order — the
    /// replay suffix for a checkpoint at `after`.
    pub fn entries_after(&self, after: u64) -> Vec<JournalEntry> {
        self.entries
            .iter()
            .filter(|e| e.id > after)
            .cloned()
            .collect()
    }

    /// True when every observe after `after` is still journalled (no
    /// overflow ate part of the replay suffix).
    pub fn complete_after(&self, after: u64) -> bool {
        self.dropped_through <= after
    }

    /// Drop everything and mark all issued ids unrecoverable (used when a
    /// shard recovers into degraded mode and the backlog is moot).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.dropped_through = self.next_id.saturating_sub(1);
    }

    /// Number of journalled entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are journalled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Global location-frequency counts, recorded lock-free at observe
/// enqueue time. When a shard cannot be restored exactly, its
/// predictions are served from this prior — the globally most frequent
/// locations — tagged
/// [`Degraded`](crate::streaming::PredictionQuality::Degraded).
#[derive(Debug)]
pub struct PopulationPrior {
    counts: Vec<AtomicU64>,
}

impl PopulationPrior {
    /// Zeroed prior over `num_locations` locations.
    pub fn new(num_locations: usize) -> Self {
        Self {
            counts: (0..num_locations).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Count one observed check-in at `loc`.
    pub fn record(&self, loc: LocationId) {
        if let Some(c) = self.counts.get(loc.index()) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total check-ins recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Dense per-location scores (the raw counts; higher = more popular).
    pub fn scores(&self) -> Vec<f32> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed) as f32)
            .collect()
    }

    /// The `k` most popular locations, most frequent first; ties broken
    /// by lower location id for determinism.
    pub fn top_k(&self, k: usize) -> Vec<LocationId> {
        let mut by_count: Vec<(u64, usize)> = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, c)| (c.load(Ordering::Relaxed), i))
            .collect();
        by_count.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        by_count
            .into_iter()
            .take(k)
            .map(|(_, i)| LocationId(i as u32))
            .collect()
    }
}

/// Per-user PTTA circuit breaker settings: when the adapted prediction's
/// entropy (the `ptta_entropy_millinats` drift signal) stays above the
/// threshold for `trip_after` consecutive predictions, adaptation is
/// paused for that user and the frozen Θ classifier serves instead.
/// After `cooldown` frozen serves, one adapted *probe* runs: if its
/// entropy has settled below the threshold the breaker closes, otherwise
/// it stays open for another cooldown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Entropy trip threshold in millinats (entropy of the adapted
    /// softmax × 1000).
    pub entropy_threshold_millinats: u64,
    /// Consecutive above-threshold predictions required to trip.
    pub trip_after: u32,
    /// Frozen serves between adapted probes while open.
    pub cooldown: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            entropy_threshold_millinats: 2_000,
            trip_after: 3,
            cooldown: 8,
        }
    }
}

/// What the breaker decided for one prediction — returned by
/// [`PttaBreaker::observe_adapted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Entropy acceptable, breaker closed: serve the adapted prediction.
    Adapt,
    /// A probe found the signal settled: the breaker just closed; serve
    /// the adapted prediction.
    Resumed,
    /// The entropy streak reached `trip_after`: the breaker just opened;
    /// roll back to frozen Θ for this prediction.
    Tripped,
    /// A probe found the signal still hot: stay open, serve frozen Θ.
    StillOpen,
}

#[derive(Debug, Clone, Copy, Default)]
struct UserBreaker {
    open: bool,
    high_streak: u32,
    served_open: u32,
}

/// Per-user circuit breaker over the PTTA entropy drift signal. Pure
/// state machine — deterministic given the entropy sequence; the caller
/// ([`StreamingPredictor`](crate::streaming::StreamingPredictor)) decides
/// what "serve frozen" means (scoring with the unadapted classifier).
#[derive(Debug)]
pub struct PttaBreaker {
    config: BreakerConfig,
    states: HashMap<UserId, UserBreaker>,
}

impl PttaBreaker {
    /// Breaker with all users initially closed (adapting).
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            states: HashMap::new(),
        }
    }

    /// True when `user`'s breaker is open (adaptation paused).
    pub fn is_open(&self, user: UserId) -> bool {
        self.states.get(&user).is_some_and(|s| s.open)
    }

    /// True when an open breaker has served `cooldown` frozen predictions
    /// and the next prediction should be an adapted probe.
    pub fn probe_due(&self, user: UserId) -> bool {
        self.states
            .get(&user)
            .is_some_and(|s| s.open && s.served_open >= self.config.cooldown)
    }

    /// Count one frozen serve while open (advances the cooldown clock).
    pub fn note_frozen_served(&mut self, user: UserId) {
        if let Some(s) = self.states.get_mut(&user) {
            if s.open {
                s.served_open += 1;
            }
        }
    }

    /// Feed the adapted prediction's entropy (millinats) through the
    /// state machine and get the serve decision. Call only when closed or
    /// when a probe is due ([`PttaBreaker::probe_due`]).
    pub fn observe_adapted(&mut self, user: UserId, entropy_millinats: u64) -> BreakerDecision {
        let hot = entropy_millinats > self.config.entropy_threshold_millinats;
        let s = self.states.entry(user).or_default();
        if s.open {
            if hot {
                // Failed probe: stay open, restart the cooldown clock.
                s.served_open = 0;
                BreakerDecision::StillOpen
            } else {
                *s = UserBreaker::default();
                BreakerDecision::Resumed
            }
        } else if hot {
            s.high_streak += 1;
            if s.high_streak >= self.config.trip_after {
                *s = UserBreaker {
                    open: true,
                    ..UserBreaker::default()
                };
                BreakerDecision::Tripped
            } else {
                BreakerDecision::Adapt
            }
        } else {
            s.high_streak = 0;
            BreakerDecision::Adapt
        }
    }

    /// Number of users whose breaker is currently open.
    pub fn open_users(&self) -> usize {
        self.states.values().filter(|s| s.open).count()
    }
}

/// Breaker metric handles — attach with
/// [`StreamingPredictor::set_breaker_obs`](crate::streaming::StreamingPredictor::set_breaker_obs).
#[derive(Debug, Clone)]
pub struct BreakerObs {
    /// Breakers opened on an entropy streak (`ptta_breaker_trips_total`).
    pub trips: Counter,
    /// Breakers closed after a settled probe
    /// (`ptta_breaker_resets_total`).
    pub resets: Counter,
    /// Predictions rolled back to frozen Θ while open
    /// (`ptta_breaker_rollbacks_total`).
    pub rollbacks: Counter,
}

impl BreakerObs {
    /// Register the breaker metrics in `registry`, with `labels` (e.g.
    /// `[("shard", "3")]`) rendered into every name.
    pub fn register(registry: &Registry, labels: &[(&str, &str)]) -> Self {
        let l = |name: &str| adamove_obs::labeled(name, labels);
        Self {
            trips: registry.counter(&l("ptta_breaker_trips_total")),
            resets: registry.counter(&l("ptta_breaker_resets_total")),
            rollbacks: registry.counter(&l("ptta_breaker_rollbacks_total")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamove_mobility::Timestamp;

    fn pt(loc: u32, h: i64) -> Point {
        Point::new(loc, Timestamp::from_hours(h))
    }

    #[test]
    fn retry_policy_backs_off_exponentially_and_caps() {
        let p = RetryPolicy {
            max_retries: 5,
            base_delay: Duration::from_millis(1),
            multiplier: 2,
            max_delay: Duration::from_millis(5),
        };
        assert_eq!(p.delay(0), Duration::from_millis(1));
        assert_eq!(p.delay(1), Duration::from_millis(2));
        assert_eq!(p.delay(2), Duration::from_millis(4));
        assert_eq!(p.delay(3), Duration::from_millis(5)); // capped
        assert_eq!(p.delay(30), Duration::from_millis(5));
        assert_eq!(RetryPolicy::none().max_retries, 0);
    }

    #[test]
    fn journal_assigns_monotone_ids_and_replays_suffix() {
        let mut j = Journal::new(10);
        let (a, _) = j.append(UserId(1), pt(1, 0));
        let (b, _) = j.append(UserId(2), pt(2, 1));
        let (c, _) = j.append(UserId(1), pt(3, 2));
        assert_eq!((a, b, c), (1, 2, 3));
        assert_eq!(j.len(), 3);
        let suffix = j.entries_after(1);
        assert_eq!(suffix.len(), 2);
        assert_eq!(suffix[0].id, 2);
        assert_eq!(suffix[1].id, 3);
        assert!(j.complete_after(0));
        j.prune_through(2);
        assert_eq!(j.len(), 1);
        assert_eq!(j.entries_after(0)[0].id, 3);
    }

    #[test]
    fn journal_overflow_marks_replay_incomplete() {
        let mut j = Journal::new(2);
        assert_eq!(j.append(UserId(0), pt(1, 0)), (1, false));
        assert_eq!(j.append(UserId(0), pt(2, 1)), (2, false));
        // Third append evicts id 1: replay from base 0 is now incomplete.
        assert_eq!(j.append(UserId(0), pt(3, 2)), (3, true));
        assert!(!j.complete_after(0));
        assert!(j.complete_after(1));
        assert_eq!(j.entries_after(1).len(), 2);
        j.clear();
        assert!(j.is_empty());
        assert!(!j.complete_after(2));
        assert!(j.complete_after(3));
    }

    #[test]
    fn journal_retract_undoes_only_the_latest_append() {
        let mut j = Journal::new(10);
        let (a, _) = j.append(UserId(0), pt(1, 0));
        let (b, _) = j.append(UserId(0), pt(2, 1));
        j.retract(a); // not the newest: no-op
        assert_eq!(j.len(), 2);
        j.retract(b);
        assert_eq!(j.len(), 1);
        assert_eq!(j.entries_after(0)[0].id, a);
    }

    #[test]
    fn checkpoint_store_round_trips_per_shard() {
        let store = CheckpointStore::new(2);
        assert!(!store.has(0));
        assert!(store.load(0).is_none());
        store.save(
            0,
            ShardCheckpoint {
                last_seen: 7,
                users: vec![(UserId(3), vec![pt(1, 0), pt(2, 1)])],
            },
        );
        assert!(store.has(0));
        assert!(!store.has(1));
        let cp = store.load(0).unwrap();
        assert_eq!(cp.last_seen, 7);
        assert_eq!(cp.users[0].0, UserId(3));
        assert_eq!(cp.users[0].1.len(), 2);
        store.clear(0);
        assert!(!store.has(0));
    }

    #[test]
    fn population_prior_ranks_most_frequent_first() {
        let prior = PopulationPrior::new(5);
        for _ in 0..3 {
            prior.record(LocationId(2));
        }
        prior.record(LocationId(4));
        prior.record(LocationId(4));
        prior.record(LocationId(0));
        prior.record(LocationId(99)); // out of range: ignored
        assert_eq!(prior.total(), 6);
        assert_eq!(prior.scores(), vec![1.0, 0.0, 3.0, 0.0, 2.0]);
        assert_eq!(
            prior.top_k(3),
            vec![LocationId(2), LocationId(4), LocationId(0)]
        );
        // Ties break toward the lower location id.
        let tied = PopulationPrior::new(3);
        tied.record(LocationId(1));
        tied.record(LocationId(2));
        assert_eq!(tied.top_k(2), vec![LocationId(1), LocationId(2)]);
    }

    #[test]
    fn breaker_trips_after_sustained_spike_and_resumes_after_settle() {
        let mut br = PttaBreaker::new(BreakerConfig {
            entropy_threshold_millinats: 1_000,
            trip_after: 2,
            cooldown: 2,
        });
        let u = UserId(9);
        // One hot prediction is not sustained.
        assert_eq!(br.observe_adapted(u, 1_500), BreakerDecision::Adapt);
        assert!(!br.is_open(u));
        // A settle resets the streak.
        assert_eq!(br.observe_adapted(u, 500), BreakerDecision::Adapt);
        // Two consecutive hot predictions trip.
        assert_eq!(br.observe_adapted(u, 1_500), BreakerDecision::Adapt);
        assert_eq!(br.observe_adapted(u, 1_500), BreakerDecision::Tripped);
        assert!(br.is_open(u));
        assert_eq!(br.open_users(), 1);
        // Cooldown: two frozen serves before a probe is due.
        assert!(!br.probe_due(u));
        br.note_frozen_served(u);
        assert!(!br.probe_due(u));
        br.note_frozen_served(u);
        assert!(br.probe_due(u));
        // Failed probe: stay open and restart the cooldown.
        assert_eq!(br.observe_adapted(u, 2_000), BreakerDecision::StillOpen);
        assert!(br.is_open(u));
        assert!(!br.probe_due(u));
        br.note_frozen_served(u);
        br.note_frozen_served(u);
        assert!(br.probe_due(u));
        // Settled probe closes the breaker.
        assert_eq!(br.observe_adapted(u, 500), BreakerDecision::Resumed);
        assert!(!br.is_open(u));
        assert_eq!(br.open_users(), 0);
    }

    #[test]
    fn breaker_tracks_users_independently() {
        let mut br = PttaBreaker::new(BreakerConfig {
            entropy_threshold_millinats: 1_000,
            trip_after: 1,
            cooldown: 1,
        });
        assert_eq!(
            br.observe_adapted(UserId(0), 2_000),
            BreakerDecision::Tripped
        );
        assert_eq!(br.observe_adapted(UserId(1), 100), BreakerDecision::Adapt);
        assert!(br.is_open(UserId(0)));
        assert!(!br.is_open(UserId(1)));
    }
}
