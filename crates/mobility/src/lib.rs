#![warn(missing_docs)]
//! Human-mobility data substrate for the AdaMove reproduction.
//!
//! Covers everything the paper's experiments need below the model layer:
//!
//! - [`types`] — spatio-temporal points, trajectories, sessions and datasets
//!   (paper Definitions 1–3);
//! - [`timecode`] — the 48-slot workday/weekend time encoding of Eq. 4;
//! - [`preprocess`] — the §IV-A cleaning pipeline (rare-location filter,
//!   72-hour sessions, minimum session/user activity) with compact id
//!   remapping and dataset statistics (Table I);
//! - [`split`] — per-user 70/10/20 session splits and sliding-window sample
//!   construction with configurable context length `c`;
//! - [`synth`] — a generative mobility simulator with per-user anchors,
//!   weekly schedules and distribution-shift events, plus `nyc`/`tky`/`lymob`
//!   presets calibrated to Table I (substitute for the non-redistributable
//!   Foursquare and YJMob100K datasets — see DESIGN.md);
//! - [`ministream`] — seeded miniature cities whose draws bypass `rand`
//!   entirely (pure SplitMix64), the substrate for golden-trace snapshots
//!   and differential oracles in `adamove-testkit`;
//! - [`analysis`] — the Fig. 1 shift diagnostics (visit heatmaps and the
//!   biweekly cosine-similarity decay curve);
//! - [`io`] — check-in CSV import/export and processed-dataset JSON
//!   caching, the adoption path for real datasets.

pub mod analysis;
pub mod io;
pub mod ministream;
pub mod preprocess;
pub mod split;
pub mod synth;
pub mod timecode;
pub mod types;

pub use ministream::{
    generate_mini, lymob_mini, mini_preprocess_config, nyc_mini, tky_mini, MiniCityConfig,
};
pub use preprocess::{preprocess, DatasetStats, PreprocessConfig, ProcessedDataset};
pub use split::{make_samples, split_sessions, Sample, SampleConfig, Split};
pub use synth::{CityConfig, CityPreset, ShiftKind};
pub use types::{Dataset, LocationId, Point, Timestamp, Trajectory, UserId};
