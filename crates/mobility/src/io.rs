//! Dataset import/export.
//!
//! Real deployments run AdaMove on their own check-in logs (the paper used
//! Foursquare dumps and YJMob100K). This module reads the common
//! denominator format — a CSV of `user_id,location_id,timestamp` rows —
//! and writes/reads processed datasets as JSON, so an expensive
//! preprocessing run can be done once.
//!
//! The CSV reader is deliberately strict: malformed rows are reported with
//! their line number rather than silently dropped, because silent data loss
//! corrupts evaluation splits.

use crate::preprocess::ProcessedDataset;
use crate::types::{Dataset, Point, Timestamp, Trajectory, UserId};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors from dataset import.
#[derive(Debug)]
pub enum ImportError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed CSV row (1-based line number, description).
    Row(usize, String),
    /// Structurally invalid result (e.g. a location id out of range).
    Invalid(String),
    /// Malformed JSON.
    Json(serde_json::Error),
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::Io(e) => write!(f, "io error: {e}"),
            ImportError::Row(line, msg) => write!(f, "line {line}: {msg}"),
            ImportError::Invalid(msg) => write!(f, "invalid dataset: {msg}"),
            ImportError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for ImportError {}

impl From<std::io::Error> for ImportError {
    fn from(e: std::io::Error) -> Self {
        ImportError::Io(e)
    }
}

impl From<serde_json::Error> for ImportError {
    fn from(e: serde_json::Error) -> Self {
        ImportError::Json(e)
    }
}

/// Read a check-in CSV (`user_id,location_id,timestamp_seconds`) into a raw
/// [`Dataset`]. A header line is detected (first field non-numeric) and
/// skipped; user and location ids are remapped to compact ranges in
/// first-appearance order; points are sorted per user.
pub fn read_checkin_csv(reader: impl Read, name: &str) -> Result<Dataset, ImportError> {
    let reader = BufReader::new(reader);
    let mut user_map: BTreeMap<u64, u32> = BTreeMap::new();
    let mut loc_map: BTreeMap<u64, u32> = BTreeMap::new();
    let mut points_by_user: Vec<Vec<Point>> = Vec::new();

    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() != 3 {
            return Err(ImportError::Row(
                line_no,
                format!("expected 3 fields, got {}", fields.len()),
            ));
        }
        // Header detection: only allowed on the first line.
        if idx == 0 && fields[0].parse::<u64>().is_err() {
            continue;
        }
        let user_raw: u64 = fields[0]
            .parse()
            .map_err(|_| ImportError::Row(line_no, format!("bad user id `{}`", fields[0])))?;
        let loc_raw: u64 = fields[1]
            .parse()
            .map_err(|_| ImportError::Row(line_no, format!("bad location id `{}`", fields[1])))?;
        let ts: i64 = fields[2]
            .parse()
            .map_err(|_| ImportError::Row(line_no, format!("bad timestamp `{}`", fields[2])))?;

        let next_user = user_map.len() as u32;
        let uid = *user_map.entry(user_raw).or_insert(next_user);
        let next_loc = loc_map.len() as u32;
        let lid = *loc_map.entry(loc_raw).or_insert(next_loc);
        if uid as usize >= points_by_user.len() {
            points_by_user.resize_with(uid as usize + 1, Vec::new);
        }
        points_by_user[uid as usize].push(Point::new(lid, Timestamp(ts)));
    }

    let trajectories: Vec<Trajectory> = points_by_user
        .into_iter()
        .enumerate()
        .map(|(i, pts)| Trajectory::new(UserId(i as u32), pts))
        .collect();
    let dataset = Dataset {
        name: name.to_string(),
        num_locations: loc_map.len() as u32,
        trajectories,
    };
    dataset.validate().map_err(ImportError::Invalid)?;
    Ok(dataset)
}

/// Read a check-in CSV from a file path.
pub fn read_checkin_csv_file(path: impl AsRef<Path>) -> Result<Dataset, ImportError> {
    let name = path
        .as_ref()
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dataset")
        .to_string();
    let file = std::fs::File::open(path)?;
    read_checkin_csv(file, &name)
}

/// Write a raw dataset back out as a check-in CSV (with header).
pub fn write_checkin_csv(dataset: &Dataset, mut writer: impl Write) -> std::io::Result<()> {
    writeln!(writer, "user_id,location_id,timestamp")?;
    for tr in &dataset.trajectories {
        for p in &tr.points {
            writeln!(writer, "{},{},{}", tr.user.0, p.loc.0, p.time.0)?;
        }
    }
    Ok(())
}

/// Serialise a processed dataset as JSON (one preprocessing run, many
/// experiment runs).
pub fn processed_to_json(data: &ProcessedDataset) -> String {
    serde_json::to_string(data).expect("ProcessedDataset serialisation cannot fail")
}

/// Load a processed dataset from JSON, validating invariants.
pub fn processed_from_json(json: &str) -> Result<ProcessedDataset, ImportError> {
    let data: ProcessedDataset = serde_json::from_str(json)?;
    data.validate().map_err(ImportError::Invalid)?;
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, PreprocessConfig};
    use crate::synth::{generate, CityPreset, Scale};

    #[test]
    fn csv_round_trip_preserves_data() {
        let mut cfg = CityPreset::Nyc.config(Scale::Small);
        cfg.num_users = 8;
        cfg.days = 20;
        let original = generate(&cfg);

        let mut buf = Vec::new();
        write_checkin_csv(&original, &mut buf).unwrap();
        let parsed = read_checkin_csv(&buf[..], "round-trip").unwrap();

        assert_eq!(parsed.num_users(), original.num_users());
        assert_eq!(parsed.num_points(), original.num_points());
        // Point streams match per user (ids remap in first-appearance
        // order, so location ids can differ; counts and times must not).
        for (a, b) in original.trajectories.iter().zip(&parsed.trajectories) {
            assert_eq!(a.len(), b.len());
            for (pa, pb) in a.points.iter().zip(&b.points) {
                assert_eq!(pa.time, pb.time);
            }
        }
    }

    #[test]
    fn header_is_skipped_and_ids_compacted() {
        let csv = "user_id,location_id,timestamp\n\
                   900,5000,100\n\
                   900,5001,200\n\
                   901,5000,150\n";
        let ds = read_checkin_csv(csv.as_bytes(), "t").unwrap();
        assert_eq!(ds.num_users(), 2);
        assert_eq!(ds.num_locations, 2);
        assert_eq!(ds.trajectories[0].points[0].loc.0, 0);
        ds.validate().unwrap();
    }

    #[test]
    fn unsorted_rows_are_sorted_per_user() {
        let csv = "1,10,300\n1,11,100\n1,12,200\n";
        let ds = read_checkin_csv(csv.as_bytes(), "t").unwrap();
        let times: Vec<i64> = ds.trajectories[0].points.iter().map(|p| p.time.0).collect();
        assert_eq!(times, vec![100, 200, 300]);
    }

    #[test]
    fn malformed_rows_are_rejected_with_line_numbers() {
        let missing_field = "1,10\n";
        let err = read_checkin_csv(missing_field.as_bytes(), "t").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");

        let bad_ts = "1,10,100\n1,10,notatime\n";
        let err = read_checkin_csv(bad_ts.as_bytes(), "t").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(err.to_string().contains("notatime"), "{err}");

        // Non-numeric first field after line 1 is an error, not a header.
        let late_header = "1,10,100\nuser,loc,time\n";
        assert!(read_checkin_csv(late_header.as_bytes(), "t").is_err());
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let csv = "1,10,100\n\n2,11,200\n";
        let ds = read_checkin_csv(csv.as_bytes(), "t").unwrap();
        assert_eq!(ds.num_points(), 2);
    }

    #[test]
    fn processed_json_round_trip() {
        let mut cfg = CityPreset::Lymob.config(Scale::Small);
        cfg.num_users = 12;
        cfg.days = 20;
        let raw = generate(&cfg);
        let processed = preprocess(
            &raw,
            &PreprocessConfig {
                min_users_per_location: 2,
                min_sessions_per_user: 2,
                ..PreprocessConfig::default()
            },
        );
        let json = processed_to_json(&processed);
        let loaded = processed_from_json(&json).unwrap();
        assert_eq!(loaded.num_users(), processed.num_users());
        assert_eq!(loaded.num_locations, processed.num_locations);
        assert_eq!(loaded.stats(), processed.stats());
    }

    #[test]
    fn corrupt_processed_json_is_rejected() {
        assert!(processed_from_json("{not json").is_err());
        // Valid JSON, broken invariants (user id != index).
        let bad = r#"{"name":"x","num_locations":1,"session_window_secs":259200,
            "users":[{"user":5,"sessions":[[{"loc":0,"time":1}]]}]}"#;
        let err = processed_from_json(bad).unwrap_err();
        assert!(matches!(err, ImportError::Invalid(_)), "{err}");
    }

    #[test]
    fn imported_csv_flows_through_the_pipeline() {
        // The adoption path: CSV in -> preprocess -> samples out.
        let mut cfg = CityPreset::Nyc.config(Scale::Small);
        cfg.num_users = 15;
        cfg.days = 40;
        let original = generate(&cfg);
        let mut buf = Vec::new();
        write_checkin_csv(&original, &mut buf).unwrap();
        let imported = read_checkin_csv(&buf[..], "import").unwrap();
        // 15 users cannot clear the paper's 10-visitor location filter;
        // scale the threshold like a real small-cohort deployment would.
        let processed = preprocess(
            &imported,
            &PreprocessConfig {
                min_users_per_location: 3,
                ..PreprocessConfig::default()
            },
        );
        processed.validate().unwrap();
        assert!(processed.num_users() > 0);
    }
}
