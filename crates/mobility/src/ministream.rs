//! Seeded mini-streams: tiny, backend-independent synthetic cities.
//!
//! The full generator in [`synth`](crate::synth) draws from the external
//! `rand` crate, whose stream differs between the real dependency and the
//! offline dev stub — fine for invariance tests, fatal for *golden-trace
//! snapshots*, where a checked-in metric baseline must reproduce bit-alike
//! under every build of the workspace. The builders here produce the same
//! schedule-structured, shift-bearing check-in data at laptop-test scale,
//! but every draw goes through [`DetRng`] (an in-repo SplitMix64), so a
//! mini-stream is a pure function of its config — identical across rand
//! backends, platforms, and build profiles.
//!
//! Three presets mirror the paper's evaluation cities at miniature scale:
//! [`nyc_mini`], [`tky_mini`], [`lymob_mini`]. `*_mini().stable()` turns
//! off the distribution shift — the workload for oracles that compare
//! PTTA-adapted against frozen predictions on non-shifted streams.

use crate::preprocess::PreprocessConfig;
use crate::types::{Dataset, Point, Timestamp, Trajectory, UserId, DAY, HOUR};
use adamove_tensor::det::DetRng;

/// Generator parameters for one miniature synthetic city. All fields are
/// public so suites can derive variants; determinism is total — two equal
/// configs generate identical datasets on any build.
#[derive(Debug, Clone, PartialEq)]
pub struct MiniCityConfig {
    /// City label, e.g. `"nyc-mini"`.
    pub name: String,
    /// Number of users to simulate.
    pub users: usize,
    /// Size of the location universe.
    pub locations: u32,
    /// Simulated time span in days (timeline starts on a Monday).
    pub days: i64,
    /// Per-eligible-hour probability of a check-in.
    pub checkin_rate: f64,
    /// Fraction of users that experience a hard behaviour shift.
    pub shift_fraction: f64,
    /// Day at which shifted users change behaviour.
    pub shift_day: i64,
    /// Probability that a check-in explores a random location.
    pub exploration: f64,
    /// RNG seed; the dataset is a pure function of this config.
    pub seed: u64,
}

impl MiniCityConfig {
    /// The same city with the distribution shift switched off — the
    /// stable-stream workload for PTTA-vs-frozen agreement oracles.
    pub fn stable(mut self) -> Self {
        self.shift_fraction = 0.0;
        self.name.push_str("-stable");
        self
    }

    /// Generate the dataset. See [`generate_mini`].
    pub fn generate(&self) -> Dataset {
        generate_mini(self)
    }
}

/// Foursquare-NYC analogue at miniature scale (~12 users, 4 weeks).
pub fn nyc_mini() -> MiniCityConfig {
    MiniCityConfig {
        name: "nyc-mini".into(),
        users: 12,
        locations: 60,
        days: 28,
        checkin_rate: 0.30,
        shift_fraction: 0.5,
        shift_day: 21,
        exploration: 0.05,
        seed: 0xADA_0001,
    }
}

/// Foursquare-TKY analogue: slightly larger, shifts hardest (paper §IV-B).
pub fn tky_mini() -> MiniCityConfig {
    MiniCityConfig {
        name: "tky-mini".into(),
        users: 14,
        locations: 80,
        days: 28,
        checkin_rate: 0.33,
        shift_fraction: 0.65,
        shift_day: 21,
        exploration: 0.05,
        seed: 0xADA_0002,
    }
}

/// YJMob100K analogue: shorter span, denser check-ins, mildest shift.
pub fn lymob_mini() -> MiniCityConfig {
    MiniCityConfig {
        name: "lymob-mini".into(),
        users: 10,
        locations: 50,
        days: 21,
        checkin_rate: 0.45,
        shift_fraction: 0.3,
        shift_day: 16,
        exploration: 0.04,
        seed: 0xADA_0003,
    }
}

/// Preprocessing thresholds matched to mini-stream scale: the paper's
/// defaults (10 distinct visitors per location, 5-point sessions) would
/// erase a 10-user city. Sessions stay at the paper's 72-hour window.
pub fn mini_preprocess_config() -> PreprocessConfig {
    PreprocessConfig {
        min_users_per_location: 2,
        session_window_hours: 72,
        min_points_per_session: 3,
        min_sessions_per_user: 4,
    }
}

/// One user's behavioural anchors. Locations are drawn from overlapping
/// pools (homes in the first 40% of the universe, workplaces in the next
/// 20%, venues in the rest) so the rare-location filter keeps shared
/// anchors, mirroring the full generator's partition.
struct MiniPersona {
    home: u32,
    work: u32,
    leisure: [u32; 3],
    route_pos: usize,
}

struct Pools {
    homes: u32,
    works: u32,
    venues: u32,
}

impl Pools {
    fn new(locations: u32, users: usize) -> Self {
        // Small hot pools so anchors overlap across even ~10 users.
        let homes = (users as u32 / 3).clamp(2, (locations * 2) / 5);
        let works = (users as u32 / 4).clamp(2, locations / 5);
        let venues = (users as u32).clamp(4, locations - (locations * 3) / 5);
        Self {
            homes,
            works,
            venues,
        }
    }

    fn home(&self, rng: &mut DetRng) -> u32 {
        rng.below(self.homes as usize) as u32
    }

    fn work(&self, locations: u32, rng: &mut DetRng) -> u32 {
        (locations * 2) / 5 + rng.below(self.works as usize) as u32
    }

    fn venue(&self, locations: u32, rng: &mut DetRng) -> u32 {
        (locations * 3) / 5 + rng.below(self.venues as usize) as u32
    }
}

impl MiniPersona {
    fn sample(cfg: &MiniCityConfig, pools: &Pools, rng: &mut DetRng) -> Self {
        Self {
            home: pools.home(rng),
            work: pools.work(cfg.locations, rng),
            leisure: [
                pools.venue(cfg.locations, rng),
                pools.venue(cfg.locations, rng),
                pools.venue(cfg.locations, rng),
            ],
            route_pos: 0,
        }
    }

    /// Job-change-style shift: new workplace, new evening venues.
    fn shift(&mut self, cfg: &MiniCityConfig, pools: &Pools, rng: &mut DetRng) {
        let old = self.work;
        for _ in 0..8 {
            self.work = pools.work(cfg.locations, rng);
            if self.work != old {
                break;
            }
        }
        for venue in &mut self.leisure {
            *venue = pools.venue(cfg.locations, rng);
        }
    }

    /// Where this persona checks in at hour-of-day `hour`, or `None` for a
    /// quiet slot. Same weekday/weekend schedule shape as the full
    /// generator: home mornings/evenings, work daytimes, a fixed leisure
    /// route after work (a sequential signal frequency counting misses).
    fn location_at(&mut self, weekend: bool, hour: u32) -> Option<u32> {
        let loc = if weekend {
            match hour {
                10..=21 => {
                    let l = self.leisure[self.route_pos % self.leisure.len()];
                    self.route_pos += 1;
                    l
                }
                7..=9 | 22..=23 => self.home,
                _ => return None,
            }
        } else {
            match hour {
                7..=8 => self.home,
                9..=17 => self.work,
                18..=21 => {
                    let l = self.leisure[self.route_pos % self.leisure.len()];
                    self.route_pos += 1;
                    l
                }
                22..=23 => self.home,
                _ => return None,
            }
        };
        Some(loc)
    }
}

/// Generate a miniature city. Deterministic: a pure function of `cfg`,
/// independent of the external rand backend (every draw is a [`DetRng`]
/// SplitMix64 step).
pub fn generate_mini(cfg: &MiniCityConfig) -> Dataset {
    let mut seeder = DetRng::new(cfg.seed);
    let pools = Pools::new(cfg.locations, cfg.users);
    let mut trajectories = Vec::with_capacity(cfg.users);
    for uid in 0..cfg.users {
        // Per-user child stream: trajectory content is independent of how
        // many draws earlier users consumed.
        let mut rng = seeder.fork(uid as u64);
        let mut persona = MiniPersona::sample(cfg, &pools, &mut rng);
        let shifts = rng.next_f64() < cfg.shift_fraction;
        let mut shifted = false;
        let mut points = Vec::new();
        for day in 0..cfg.days {
            persona.route_pos = 0;
            if shifts && !shifted && day >= cfg.shift_day {
                persona.shift(cfg, &pools, &mut rng);
                shifted = true;
            }
            // Day 0 is a Monday (timeline convention shared with synth).
            let weekend = day % 7 >= 5;
            for hour in 0..24u32 {
                if rng.next_f64() >= cfg.checkin_rate {
                    continue;
                }
                let loc = if rng.next_f64() < cfg.exploration {
                    rng.below(cfg.locations as usize) as u32
                } else {
                    match persona.location_at(weekend, hour) {
                        Some(l) => l,
                        None => continue,
                    }
                };
                // Minute jitter keeps timestamps distinct.
                let jitter = rng.range_i64(0, 3000);
                points.push(Point::new(
                    loc,
                    Timestamp(day * DAY + hour as i64 * HOUR + jitter),
                ));
            }
        }
        trajectories.push(Trajectory::new(UserId(uid as u32), points));
    }
    Dataset {
        name: cfg.name.clone(),
        num_locations: cfg.locations,
        trajectories,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::preprocess;
    use crate::split::{make_samples, SampleConfig, Split};

    #[test]
    fn mini_streams_are_deterministic_and_seed_sensitive() {
        let a = nyc_mini().generate();
        let b = nyc_mini().generate();
        assert_eq!(a.trajectories, b.trajectories);
        let mut other = nyc_mini();
        other.seed ^= 1;
        assert_ne!(a.trajectories, other.generate().trajectories);
    }

    #[test]
    fn all_presets_survive_mini_preprocessing_with_test_samples() {
        for cfg in [nyc_mini(), tky_mini(), lymob_mini()] {
            let ds = cfg.generate();
            ds.validate().unwrap();
            let processed = preprocess(&ds, &mini_preprocess_config());
            processed.validate().unwrap();
            assert!(
                processed.num_users() >= cfg.users * 2 / 3,
                "{}: only {}/{} users survived",
                cfg.name,
                processed.num_users(),
                cfg.users
            );
            let test = make_samples(&processed, Split::Test, &SampleConfig::eval(2));
            assert!(
                test.len() >= 30,
                "{}: only {} test samples",
                cfg.name,
                test.len()
            );
            let train = make_samples(&processed, Split::Train, &SampleConfig::train());
            assert!(train.len() > test.len());
        }
    }

    #[test]
    fn stable_variant_differs_and_does_not_shift() {
        let shifted = nyc_mini();
        let stable = nyc_mini().stable();
        assert_eq!(stable.shift_fraction, 0.0);
        assert!(stable.name.ends_with("-stable"));
        // Same seed, but the shift branch changes post-shift trajectories.
        let a = shifted.generate();
        let b = stable.generate();
        assert_ne!(a.trajectories, b.trajectories);
        assert_eq!(a.trajectories.len(), b.trajectories.len());
    }

    #[test]
    fn personas_have_periodic_daytime_structure() {
        let ds = nyc_mini().stable().generate();
        // Workday daytime check-ins concentrate on the user's workplace.
        let tr = &ds.trajectories[0];
        let daytime: Vec<_> = tr
            .points
            .iter()
            .filter(|p| p.time.days() % 7 < 5 && (9..=17).contains(&p.time.hour_of_day()))
            .collect();
        assert!(daytime.len() > 10);
        let mut counts = std::collections::HashMap::new();
        for p in &daytime {
            *counts.entry(p.loc).or_insert(0usize) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(
            max as f64 > 0.5 * daytime.len() as f64,
            "modal daytime location covers {max}/{}",
            daytime.len()
        );
    }
}
