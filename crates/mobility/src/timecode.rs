//! The 48-slot time encoding of paper Eq. 4.
//!
//! Hours `0..=23` on workdays map to codes `0..=23`; hours on weekends map
//! to `24..=47`. This lets the embedding layer separate weekday from weekend
//! routines — the periodicity signal §III-C leans on.

use crate::types::Timestamp;

/// Number of discrete time slots.
pub const NUM_TIME_SLOTS: u32 = 48;

/// Encode a timestamp into its slot: `[0, 23]` workday hours,
/// `[24, 47]` weekend hours.
pub fn time_code(t: Timestamp) -> u32 {
    let hour = t.hour_of_day();
    if t.is_weekend() {
        24 + hour
    } else {
        hour
    }
}

/// Decode a slot back to `(hour_of_day, is_weekend)` — used by the synthetic
/// generator's schedules and by diagnostics.
pub fn decode(code: u32) -> (u32, bool) {
    assert!(code < NUM_TIME_SLOTS, "time code {code} out of range");
    if code < 24 {
        (code, false)
    } else {
        (code - 24, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DAY, HOUR};

    #[test]
    fn workday_hours_map_to_low_slots() {
        // Monday (epoch) 00:00 through 23:00.
        for h in 0..24i64 {
            let t = Timestamp(h * HOUR);
            assert_eq!(time_code(t), h as u32);
        }
    }

    #[test]
    fn weekend_hours_map_to_high_slots() {
        for (day, start) in [(5i64, "sat"), (6, "sun")] {
            for h in 0..24i64 {
                let t = Timestamp(day * DAY + h * HOUR);
                assert_eq!(time_code(t), 24 + h as u32, "{start} {h}h");
            }
        }
    }

    #[test]
    fn friday_night_vs_saturday_night_differ() {
        let fri_23 = Timestamp(4 * DAY + 23 * HOUR);
        let sat_23 = Timestamp(5 * DAY + 23 * HOUR);
        assert_eq!(time_code(fri_23), 23);
        assert_eq!(time_code(sat_23), 47);
    }

    #[test]
    fn codes_cover_exactly_48_slots() {
        let mut seen = [false; 48];
        for day in 0..7i64 {
            for h in 0..24i64 {
                let code = time_code(Timestamp(day * DAY + h * HOUR));
                assert!(code < NUM_TIME_SLOTS);
                seen[code as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all 48 slots reachable");
    }

    #[test]
    fn decode_round_trips() {
        for code in 0..NUM_TIME_SLOTS {
            let (hour, weekend) = decode(code);
            let day = if weekend { 5 } else { 0 };
            let t = Timestamp(day * DAY + hour as i64 * HOUR);
            assert_eq!(time_code(t), code);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_rejects_oversized_code() {
        decode(48);
    }
}
