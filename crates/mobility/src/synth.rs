//! Synthetic human-mobility generator with distribution shift.
//!
//! Substitute for the non-redistributable Foursquare NYC/TKY and YJMob100K
//! datasets (see DESIGN.md). The generator produces the two properties
//! AdaMove exercises:
//!
//! 1. **Periodic, session-structured check-ins.** Each user owns anchor
//!    locations (home, workplace, a leisure set) drawn from shared,
//!    popularity-skewed pools, and follows a weekly schedule (workday
//!    commute pattern, weekend venues) with stochastic check-ins and a small
//!    exploration rate.
//! 2. **Temporal distribution shift.** A configurable fraction of users
//!    experiences a [`ShiftKind`] event (job change, relocation, interest
//!    drift) at a configurable point in the timeline — by default inside
//!    the test region, reproducing the paper's Fig. 1 scenario. On top of
//!    the hard shift, all users slowly rotate their leisure set, which
//!    yields the gradual similarity decay of Fig. 1(c).

use crate::types::{Dataset, LocationId, Point, Timestamp, Trajectory, UserId, DAY, HOUR};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The kind of behaviour change a shifted user experiences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShiftKind {
    /// New workplace and new after-work venues (the paper's Fig. 1a story).
    JobChange,
    /// New home, keeping work.
    Relocation,
    /// Leisure venues replaced wholesale.
    InterestDrift,
}

/// Generator parameters for one synthetic city.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CityConfig {
    /// City label, e.g. `"NYC-synth"`.
    pub name: String,
    /// Number of users to simulate.
    pub num_users: usize,
    /// Size of the location universe (before the rare-location filter).
    pub num_locations: u32,
    /// Simulated time span in days (timeline starts on a Monday).
    pub days: i64,
    /// Per-eligible-hour probability of a check-in. Higher values make
    /// denser trajectories (the LYMOB preset uses this).
    pub checkin_rate: f64,
    /// Fraction of users that experience a hard [`ShiftKind`] event.
    pub shift_fraction: f64,
    /// Position of the hard shift in the timeline as a fraction of `days`
    /// (0.75 puts it just inside the 20% test region).
    pub shift_at: f64,
    /// Probability that a check-in explores a random location instead of an
    /// anchor.
    pub exploration: f64,
    /// Probability per week that a user swaps one leisure anchor — the slow
    /// drift behind Fig. 1(c).
    pub weekly_drift: f64,
    /// Number of leisure anchors per user.
    pub num_leisure: usize,
    /// RNG seed; every dataset is reproducible from its config.
    pub seed: u64,
}

/// Scaled presets: `Small` finishes in seconds on a laptop, `Paper` matches
/// the Table I population sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Laptop scale (default for examples and tests).
    Small,
    /// Table I scale.
    Paper,
}

/// The three evaluation cities of §IV-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CityPreset {
    /// Foursquare New York analogue: ~11 months, moderate density.
    Nyc,
    /// Foursquare Tokyo analogue: ~11 months, more users and venues,
    /// stronger shift (the paper observes TKY shifts most).
    Tky,
    /// YJMob100K analogue: 75 days, grid-cell locations, dense check-ins,
    /// mild shift (shorter span -> smaller drift, §IV-B).
    Lymob,
}

impl CityPreset {
    /// Generator configuration for this city at the given scale.
    pub fn config(self, scale: Scale) -> CityConfig {
        let (name, users, locs, days, rate) = match (self, scale) {
            (CityPreset::Nyc, Scale::Small) => ("NYC-synth", 60, 400, 140, 0.16),
            (CityPreset::Nyc, Scale::Paper) => ("NYC-synth", 637, 4713, 334, 0.16),
            (CityPreset::Tky, Scale::Small) => ("TKY-synth", 80, 500, 140, 0.20),
            (CityPreset::Tky, Scale::Paper) => ("TKY-synth", 1843, 7736, 334, 0.20),
            (CityPreset::Lymob, Scale::Small) => ("LYMOB-synth", 70, 350, 75, 0.34),
            (CityPreset::Lymob, Scale::Paper) => ("LYMOB-synth", 500, 5906, 75, 0.34),
        };
        // Shift calibration targets Fig. 1(c): similarity falls below ~0.5
        // within three months past the history window. Real check-in data
        // drifts for almost every user (venue churn, seasonality), which the
        // hard per-user shift plus weekly anchor rotation approximates.
        let (shift_fraction, shift_at, weekly_drift) = match self {
            CityPreset::Nyc => (0.55, 0.72, 0.10),
            CityPreset::Tky => (0.70, 0.72, 0.12),
            // 75 days -> smaller drift, matching the paper's observation
            // that LYMOB shows the smallest distribution shift.
            CityPreset::Lymob => (0.30, 0.75, 0.05),
        };
        CityConfig {
            name: name.to_string(),
            num_users: users,
            num_locations: locs,
            days,
            checkin_rate: rate,
            shift_fraction,
            shift_at,
            exploration: 0.06,
            weekly_drift,
            num_leisure: 4,
            seed: 0x5EED ^ (self as u64) << 8,
        }
    }
}

/// Shared location pools so that anchors overlap across users (the paper's
/// rare-location filter requires >= 10 distinct visitors per location).
///
/// Homes and workplaces are drawn uniformly from *hot* sub-pools whose size
/// scales with the population (dense apartment blocks / office towers), so
/// they reliably clear the 10-visitor threshold. Leisure venues mix a hot
/// subset with a popularity-skewed long tail, so some venue visits are
/// filtered — mirroring the sparsity of real check-in data.
struct LocationPools {
    homes: Vec<u32>,
    works: Vec<u32>,
    venues: Vec<u32>,
    hot_homes: usize,
    hot_works: usize,
    hot_venues: usize,
}

impl LocationPools {
    fn new(num_locations: u32, num_users: usize) -> Self {
        // Partition the universe 40% residential / 20% offices / 40% venues.
        let n = num_locations;
        let h = (n * 2) / 5;
        let w = n / 5;
        let homes: Vec<u32> = (0..h).collect();
        let works: Vec<u32> = (h..h + w).collect();
        let venues: Vec<u32> = (h + w..n).collect();
        // Hot sub-pool sizes: ~12 users per home, ~18 per office; venues
        // scale with population so popular bars/shops pass the filter while
        // keeping a rich vocabulary for the prediction task.
        let hot_homes = (num_users / 12).clamp(3, homes.len().max(1));
        let hot_works = (num_users / 18).clamp(2, works.len().max(1));
        let hot_venues = num_users.clamp(10, venues.len().max(1));
        Self {
            homes,
            works,
            venues,
            hot_homes,
            hot_works,
            hot_venues,
        }
    }

    fn pick_home(&self, rng: &mut StdRng) -> u32 {
        self.homes[rng.gen_range(0..self.hot_homes)]
    }

    fn pick_work(&self, rng: &mut StdRng) -> u32 {
        self.works[rng.gen_range(0..self.hot_works)]
    }

    /// 70% hot venues (survive filtering), 30% long tail (mostly filtered).
    fn pick_venue(&self, rng: &mut StdRng) -> u32 {
        if rng.gen::<f64>() < 0.7 {
            self.venues[rng.gen_range(0..self.hot_venues)]
        } else {
            popular_pick(&self.venues, rng, 1.8)
        }
    }
}

/// Draw `n` venues without duplicates (bounded retries; tiny pools may
/// still yield repeats, which only weakens the route signal slightly).
/// Distinct stops keep the evening route deterministic given the previous
/// venue — the transition signal sequence models exploit.
fn distinct_venues(pools: &LocationPools, n: usize, rng: &mut StdRng) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::with_capacity(n);
    for _ in 0..n {
        let mut candidate = pools.pick_venue(rng);
        for _ in 0..16 {
            if !out.contains(&candidate) {
                break;
            }
            candidate = pools.pick_venue(rng);
        }
        out.push(candidate);
    }
    out
}

/// Redraw until the sample differs from `current` (bounded retries so tiny
/// pools cannot loop forever — after that, accept the collision).
fn pick_different(current: u32, rng: &mut StdRng, mut pick: impl FnMut(&mut StdRng) -> u32) -> u32 {
    for _ in 0..16 {
        let candidate = pick(rng);
        if candidate != current {
            return candidate;
        }
    }
    current
}

/// Draw from a pool with a power-law popularity skew (`u^alpha` maps the
/// uniform draw toward low indices), so popular venues are shared by many
/// users while the tail stays sparse.
fn popular_pick(pool: &[u32], rng: &mut StdRng, alpha: f64) -> u32 {
    debug_assert!(!pool.is_empty());
    let u: f64 = rng.gen::<f64>();
    let idx = ((u.powf(alpha)) * pool.len() as f64) as usize;
    pool[idx.min(pool.len() - 1)]
}

#[derive(Debug, Clone)]
struct Persona {
    home: u32,
    work: u32,
    leisure: Vec<u32>,
    weekend: Vec<u32>,
    /// Phase offset (hours) shifting this user's schedule.
    phase: i64,
    shift: Option<ShiftKind>,
    /// Position along today's leisure route (reset daily). Evening venues
    /// are visited in a fixed per-user ORDER, so the next venue depends on
    /// the previous one — a sequential signal that frequency counting
    /// cannot capture but sequence models (and PTTA's pattern matching)
    /// can.
    route_pos: usize,
}

impl Persona {
    fn sample(pools: &LocationPools, cfg: &CityConfig, rng: &mut StdRng) -> Self {
        let leisure = distinct_venues(pools, cfg.num_leisure, rng);
        let weekend = distinct_venues(pools, cfg.num_leisure, rng);
        Self {
            home: pools.pick_home(rng),
            work: pools.pick_work(rng),
            leisure,
            weekend,
            phase: rng.gen_range(-1..=1),
            shift: None,
            route_pos: 0,
        }
    }

    fn apply_shift(&mut self, kind: ShiftKind, pools: &LocationPools, rng: &mut StdRng) {
        self.shift = Some(kind);
        match kind {
            ShiftKind::JobChange => {
                self.work = pick_different(self.work, rng, |r| pools.pick_work(r));
                // New office district -> new after-work venues.
                for l in &mut self.leisure {
                    *l = pools.pick_venue(rng);
                }
            }
            ShiftKind::Relocation => {
                self.home = pick_different(self.home, rng, |r| pools.pick_home(r));
                for l in &mut self.weekend {
                    *l = pools.pick_venue(rng);
                }
            }
            ShiftKind::InterestDrift => {
                for l in self.leisure.iter_mut().chain(&mut self.weekend) {
                    *l = pools.pick_venue(rng);
                }
            }
        }
    }

    /// Where this persona checks in at the given hour, or `None` when the
    /// slot is a stay-quiet hour.
    fn location_at(&mut self, t: Timestamp, rng: &mut StdRng, cfg: &CityConfig) -> Option<u32> {
        let hour = ((t.hour_of_day() as i64 + self.phase).rem_euclid(24)) as u32;
        if rng.gen::<f64>() < cfg.exploration {
            return Some(rng.gen_range(0..cfg.num_locations));
        }
        let loc = if t.is_weekend() {
            match hour {
                10..=21 => {
                    let l = self.weekend[self.route_pos % self.weekend.len()];
                    self.route_pos += 1;
                    l
                }
                7..=9 | 22..=23 => self.home,
                _ => return None, // asleep
            }
        } else {
            match hour {
                7..=8 => self.home,
                9..=17 => self.work,
                18..=21 => {
                    let l = self.leisure[self.route_pos % self.leisure.len()];
                    self.route_pos += 1;
                    l
                }
                22..=23 => self.home,
                _ => return None, // asleep
            }
        };
        Some(loc)
    }

    /// Start a new day: the leisure route restarts from its first stop.
    fn new_day(&mut self) {
        self.route_pos = 0;
    }
}

/// Generate a full raw dataset from a config. Deterministic in the seed.
pub fn generate(cfg: &CityConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let pools = LocationPools::new(cfg.num_locations, cfg.num_users);
    let shift_time = ((cfg.days as f64 * cfg.shift_at) * DAY as f64) as i64;

    let mut trajectories = Vec::with_capacity(cfg.num_users);
    for uid in 0..cfg.num_users {
        let mut persona = Persona::sample(&pools, cfg, &mut rng);
        let shifts = rng.gen::<f64>() < cfg.shift_fraction;
        let kind = match rng.gen_range(0..3) {
            0 => ShiftKind::JobChange,
            1 => ShiftKind::Relocation,
            _ => ShiftKind::InterestDrift,
        };
        let mut shifted = false;

        let mut points = Vec::new();
        for day in 0..cfg.days {
            persona.new_day();
            // Weekly slow drift: swap one leisure anchor.
            if day % 7 == 0 && rng.gen::<f64>() < cfg.weekly_drift {
                let i = rng.gen_range(0..persona.leisure.len());
                persona.leisure[i] = pools.pick_venue(&mut rng);
            }
            for hour in 0..24i64 {
                let t = Timestamp(day * DAY + hour * HOUR);
                if shifts && !shifted && t.0 >= shift_time {
                    persona.apply_shift(kind, &pools, &mut rng);
                    shifted = true;
                }
                if rng.gen::<f64>() >= cfg.checkin_rate {
                    continue;
                }
                if let Some(loc) = persona.location_at(t, &mut rng, cfg) {
                    // Minute jitter keeps timestamps distinct.
                    let jitter = rng.gen_range(0..3000);
                    points.push(Point::new(loc, Timestamp(t.0 + jitter)));
                }
            }
        }
        trajectories.push(Trajectory::new(UserId(uid as u32), points));
    }

    Dataset {
        name: cfg.name.clone(),
        num_locations: cfg.num_locations,
        trajectories,
    }
}

/// Generate a single user with a guaranteed [`ShiftKind::JobChange`] at
/// `shift_day` — the Fig. 10 case-study workload.
pub fn generate_case_study_user(
    cfg: &CityConfig,
    shift_day: i64,
    seed: u64,
) -> (Trajectory, ShiftKind) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pools = LocationPools::new(cfg.num_locations, cfg.num_users);
    let mut persona = Persona::sample(&pools, cfg, &mut rng);
    let mut points = Vec::new();
    let mut shifted = false;
    for day in 0..cfg.days {
        persona.new_day();
        if !shifted && day >= shift_day {
            persona.apply_shift(ShiftKind::JobChange, &pools, &mut rng);
            shifted = true;
        }
        for hour in 0..24i64 {
            let t = Timestamp(day * DAY + hour * HOUR);
            if rng.gen::<f64>() >= cfg.checkin_rate {
                continue;
            }
            if let Some(loc) = persona.location_at(t, &mut rng, cfg) {
                points.push(Point::new(loc, Timestamp(t.0 + rng.gen_range(0..3000))));
            }
        }
    }
    (Trajectory::new(UserId(0), points), ShiftKind::JobChange)
}

/// `LocationId`s a persona-style analysis can group by — exposed for the
/// case-study rendering in the bench crate.
pub fn location_kind(num_locations: u32, loc: LocationId) -> &'static str {
    let n = num_locations;
    let h = (n * 2) / 5;
    let w = n / 5;
    if loc.0 < h {
        "residential"
    } else if loc.0 < h + w {
        "office"
    } else {
        "venue"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, PreprocessConfig};

    fn small_cfg() -> CityConfig {
        CityConfig {
            num_users: 30,
            days: 60,
            num_locations: 200,
            ..CityPreset::Nyc.config(Scale::Small)
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let cfg = small_cfg();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.trajectories, b.trajectories);
        let mut cfg2 = cfg.clone();
        cfg2.seed += 1;
        let c = generate(&cfg2);
        assert_ne!(a.trajectories, c.trajectories);
    }

    #[test]
    fn generated_data_is_valid_and_nonempty() {
        let ds = generate(&small_cfg());
        ds.validate().unwrap();
        assert_eq!(ds.num_users(), 30);
        assert!(ds.num_points() > 1000, "got {}", ds.num_points());
        let (lo, hi) = ds.time_range().unwrap();
        assert!(lo.0 >= 0);
        assert!(hi.days() < 60);
    }

    #[test]
    fn generated_data_survives_paper_preprocessing() {
        let ds = generate(&CityPreset::Nyc.config(Scale::Small));
        let out = preprocess(&ds, &PreprocessConfig::default());
        out.validate().unwrap();
        // Most users must survive the filters for the presets to be useful.
        assert!(
            out.num_users() as f64 >= 0.8 * ds.num_users() as f64,
            "only {}/{} users survived",
            out.num_users(),
            ds.num_users()
        );
        let stats = out.stats();
        assert!(stats.num_trajectories >= out.num_users() * 5);
    }

    #[test]
    fn users_show_periodic_structure() {
        // A user's workday-daytime check-ins should concentrate on few
        // locations (their workplace dominates).
        let ds = generate(&small_cfg());
        let tr = &ds.trajectories[0];
        let daytime: Vec<_> = tr
            .points
            .iter()
            .filter(|p| !p.time.is_weekend() && (9..=17).contains(&p.time.hour_of_day()))
            .collect();
        assert!(daytime.len() > 20);
        let mut counts = std::collections::HashMap::new();
        for p in &daytime {
            *counts.entry(p.loc).or_insert(0usize) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        // The modal location dominates (schedule + exploration noise).
        assert!(
            max as f64 > 0.5 * daytime.len() as f64,
            "modal daytime location covers {max}/{}",
            daytime.len()
        );
    }

    #[test]
    fn shift_changes_test_period_distribution() {
        // With a 100% shift fraction, users' post-shift workday check-in
        // distributions must differ from pre-shift ones.
        let mut cfg = small_cfg();
        cfg.shift_fraction = 1.0;
        cfg.shift_at = 0.5;
        cfg.exploration = 0.0;
        cfg.weekly_drift = 0.0;
        let ds = generate(&cfg);
        let boundary = (cfg.days as f64 * 0.5) as i64 * DAY;
        let mut changed = 0;
        for tr in &ds.trajectories {
            let before: std::collections::HashSet<_> = tr
                .points
                .iter()
                .filter(|p| p.time.0 < boundary)
                .map(|p| p.loc)
                .collect();
            let after: std::collections::HashSet<_> = tr
                .points
                .iter()
                .filter(|p| p.time.0 >= boundary)
                .map(|p| p.loc)
                .collect();
            if after.difference(&before).count() > 0 {
                changed += 1;
            }
        }
        assert!(
            changed as f64 > 0.9 * ds.num_users() as f64,
            "{changed}/{} users changed locations",
            ds.num_users()
        );
    }

    #[test]
    fn case_study_user_shifts_at_requested_day() {
        let mut cfg = small_cfg();
        cfg.checkin_rate = 0.25;
        let (tr, kind) = generate_case_study_user(&cfg, 30, 7);
        assert_eq!(kind, ShiftKind::JobChange);
        assert!(tr.len() > 100);
        // Daytime workday location changes across the boundary.
        let work_before = modal_work_location(&tr, 0, 30);
        let work_after = modal_work_location(&tr, 30, 60);
        assert_ne!(work_before, work_after);
    }

    fn modal_work_location(tr: &Trajectory, from_day: i64, to_day: i64) -> Option<LocationId> {
        let mut counts = std::collections::HashMap::new();
        for p in &tr.points {
            let d = p.time.days();
            if d >= from_day
                && d < to_day
                && !p.time.is_weekend()
                && (9..=17).contains(&p.time.hour_of_day())
            {
                *counts.entry(p.loc).or_insert(0usize) += 1;
            }
        }
        counts.into_iter().max_by_key(|&(_, c)| c).map(|(l, _)| l)
    }

    #[test]
    fn presets_have_expected_relative_properties() {
        let nyc = CityPreset::Nyc.config(Scale::Small);
        let tky = CityPreset::Tky.config(Scale::Small);
        let lymob = CityPreset::Lymob.config(Scale::Small);
        // TKY shifts hardest, LYMOB least (paper §IV-B discussion).
        assert!(tky.shift_fraction > nyc.shift_fraction);
        assert!(lymob.shift_fraction < nyc.shift_fraction);
        // LYMOB is denser and shorter.
        assert!(lymob.checkin_rate > nyc.checkin_rate);
        assert_eq!(lymob.days, 75);
        // Paper scale matches Table I populations.
        let paper = CityPreset::Nyc.config(Scale::Paper);
        assert_eq!(paper.num_users, 637);
        assert_eq!(paper.num_locations, 4713);
    }

    #[test]
    fn location_kind_partitions_universe() {
        let n = 100;
        let mut seen = std::collections::HashSet::new();
        for l in 0..n {
            seen.insert(location_kind(n, LocationId(l)));
        }
        assert_eq!(seen.len(), 3);
    }
}
