//! Train/validation/test splitting and sliding-window sample construction.
//!
//! Per §IV-A: for each user the earliest 70% of sessions train, the next 10%
//! validate, the last 20% test; within each region a sliding window turns
//! every point into a prediction target. The recent trajectory fed to the
//! model spans the last `c` sessions (context length, Definition 3), and the
//! history is everything before it.

use crate::preprocess::ProcessedDataset;
use crate::types::{LocationId, Point, Timestamp, UserId};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Which region of each user's session timeline to draw samples from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Split {
    /// Earliest 70% of sessions.
    Train,
    /// Next 10%.
    Val,
    /// Final 20%.
    Test,
}

/// Session-index ranges `(train, val, test)` for a user with `n` sessions.
///
/// Boundaries are `floor(0.7 n)` and `floor(0.8 n)`, clamped so that for
/// `n >= 3` every region is non-empty even where the floors collide (e.g.
/// `n = 3` gives 1/1/1, and `n = 7` — where `floor(0.7 n) = 4` and
/// `floor(0.8 n) = 5` leave validation a single session — gives 4/1/2).
/// Users below 3 sessions (under the paper's 5-session floor) put
/// everything in train. The clamps only ever move a boundary by one
/// session, so the 70/10/20 contract holds as the guarantees: train >= 50%
/// for `n >= 5` (>= 60% for `n >= 10`), test >= 10%, and the three ranges
/// always partition `0..n` in order.
pub fn split_sessions(n: usize) -> (Range<usize>, Range<usize>, Range<usize>) {
    if n < 3 {
        // Degenerate users (below the paper's 5-session floor): train only.
        return (0..n, n..n, n..n);
    }
    let t = ((n * 7) / 10).clamp(1, n - 2);
    let v = ((n * 8) / 10).clamp(t + 1, n - 1);
    (0..t, t..v, v..n)
}

/// Sample construction parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampleConfig {
    /// Context length `c`: how many sessions back the recent trajectory
    /// reaches. The paper trains with `c = 1` and tests with `c = 5/6/5`.
    pub context_sessions: usize,
    /// Cap on history length (most recent points win); guards DeepMove-style
    /// encoders against unbounded input.
    pub max_history: usize,
    /// Minimum number of recent points required before a target (1 for
    /// plain prediction; PTTA needs 2 to generate at least one labeled
    /// pattern).
    pub min_recent_len: usize,
}

impl Default for SampleConfig {
    fn default() -> Self {
        Self {
            context_sessions: 1,
            max_history: 200,
            min_recent_len: 1,
        }
    }
}

impl SampleConfig {
    /// Training configuration (`c = 1`).
    pub fn train() -> Self {
        Self::default()
    }

    /// Evaluation configuration with the dataset-specific `c` from §IV-A.
    pub fn eval(context_sessions: usize) -> Self {
        Self {
            context_sessions,
            ..Self::default()
        }
    }
}

/// One supervised next-location example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sample {
    /// Owning user.
    pub user: UserId,
    /// Input sequence: the recent trajectory (non-empty, chronological).
    pub recent: Vec<Point>,
    /// Points before the recent window, oldest first (possibly truncated to
    /// `max_history`, keeping the most recent).
    pub history: Vec<Point>,
    /// Ground-truth next location.
    pub target: LocationId,
    /// Timestamp of the target visit.
    pub target_time: Timestamp,
}

impl Sample {
    /// Labels for every prefix of `recent`: element `k` is the location of
    /// `recent[k + 1]`, and the final label is the target. PTTA's
    /// autoregressive pattern generation consumes exactly this.
    pub fn prefix_labels(&self) -> Vec<LocationId> {
        let mut labels: Vec<LocationId> = self.recent.iter().skip(1).map(|p| p.loc).collect();
        labels.push(self.target);
        labels
    }
}

/// Build sliding-window samples for `split` over every user.
pub fn make_samples(ds: &ProcessedDataset, split: Split, cfg: &SampleConfig) -> Vec<Sample> {
    let mut samples = Vec::new();
    for user in &ds.users {
        let n = user.sessions.len();
        let (train, val, test) = split_sessions(n);
        let region = match split {
            Split::Train => train,
            Split::Val => val,
            Split::Test => test,
        };
        for si in region {
            let session = &user.sessions[si];
            for k in 0..session.len() {
                // Recent = points in sessions (si - c, si] strictly before
                // the target point.
                let ctx_start = si.saturating_sub(cfg.context_sessions - 1);
                let mut recent: Vec<Point> = Vec::new();
                for prev in ctx_start..si {
                    recent.extend_from_slice(&user.sessions[prev]);
                }
                recent.extend_from_slice(&session[..k]);
                if recent.len() < cfg.min_recent_len {
                    continue;
                }
                // History = everything before the context window.
                let mut history: Vec<Point> = user.sessions[..ctx_start]
                    .iter()
                    .flatten()
                    .copied()
                    .collect();
                if history.len() > cfg.max_history {
                    history.drain(..history.len() - cfg.max_history);
                }
                let target_point = session[k];
                samples.push(Sample {
                    user: user.user,
                    recent,
                    history,
                    target: target_point.loc,
                    target_time: target_point.time,
                });
            }
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::UserSessions;

    fn pt(loc: u32, h: i64) -> Point {
        Point::new(loc, Timestamp::from_hours(h))
    }

    /// Ten sessions of three points each; session `s` visits locations
    /// `s*10 + {0,1,2}` mod 30 at hours spaced far apart.
    fn dataset() -> ProcessedDataset {
        let sessions: Vec<Vec<Point>> = (0..10)
            .map(|s| {
                (0..3)
                    .map(|k| pt((s * 3 + k) % 30, (s * 100 + k * 2) as i64))
                    .collect()
            })
            .collect();
        ProcessedDataset {
            name: "t".into(),
            num_locations: 30,
            session_window_secs: 72 * 3600,
            users: vec![UserSessions {
                user: UserId(0),
                sessions,
            }],
        }
    }

    #[test]
    fn split_boundaries_are_70_10_20() {
        let (tr, va, te) = split_sessions(10);
        assert_eq!(tr, 0..7);
        assert_eq!(va, 7..8);
        assert_eq!(te, 8..10);
        // The paper's minimum of 5 sessions keeps all regions non-empty.
        let (tr5, va5, te5) = split_sessions(5);
        assert_eq!(tr5, 0..3);
        assert_eq!(va5, 3..4);
        assert_eq!(te5, 4..5);
    }

    #[test]
    fn regions_partition_the_timeline() {
        for n in 5..50 {
            let (tr, va, te) = split_sessions(n);
            assert_eq!(tr.end, va.start);
            assert_eq!(va.end, te.start);
            assert_eq!(te.end, n);
            assert!(!tr.is_empty() && !va.is_empty() && !te.is_empty(), "n={n}");
        }
    }

    #[test]
    fn split_of_seven_sessions_pins_the_clamped_boundaries() {
        // Regression pin for the checked-in proptest shrink (n = 7): the
        // floors give t = 4, v = 5, and the clamp chain must leave them
        // untouched — 4 train, 1 val, 2 test.
        let (tr, va, te) = split_sessions(7);
        assert_eq!(tr, 0..4);
        assert_eq!(va, 4..5);
        assert_eq!(te, 5..7);
    }

    #[test]
    fn split_contract_holds_over_full_range() {
        // The documented 70/10/20 contract, exhaustively over the same
        // domain the pipeline property samples from (0..200).
        for n in 0..200usize {
            let (tr, va, te) = split_sessions(n);
            // Partition, in order.
            assert_eq!(tr.start, 0);
            assert_eq!(tr.end, va.start);
            assert_eq!(va.end, te.start);
            assert_eq!(te.end, n);
            if n >= 5 {
                assert!(!tr.is_empty() && !va.is_empty() && !te.is_empty(), "n={n}");
                assert!(tr.len() * 2 >= n, "train {} of {n}", tr.len());
                assert!(te.len() * 10 >= n, "test {} of {n}", te.len());
            }
            if n >= 10 {
                assert!(tr.len() * 10 >= n * 6, "train {} of {n}", tr.len());
            }
        }
    }

    #[test]
    fn train_samples_use_c1_context() {
        let ds = dataset();
        let samples = make_samples(&ds, Split::Train, &SampleConfig::train());
        // c = 1: only within-session prefixes; first point of each session
        // has no context so it is skipped -> 2 samples per train session.
        assert_eq!(samples.len(), 7 * 2);
        for s in &samples {
            assert!(!s.recent.is_empty());
            // All recent points share the target's session (c = 1).
            let target_session = s.target_time.0 / (100 * 3600);
            for p in &s.recent {
                assert_eq!(p.time.0 / (100 * 3600), target_session);
            }
        }
    }

    #[test]
    fn eval_samples_span_multiple_sessions() {
        let ds = dataset();
        let cfg = SampleConfig::eval(3);
        let samples = make_samples(&ds, Split::Test, &cfg);
        // Test sessions are 8 and 9, 3 points each -> 6 samples.
        assert_eq!(samples.len(), 6);
        // The first test sample (session 8, point 0) draws context from
        // sessions 6 and 7.
        let first = &samples[0];
        assert_eq!(first.recent.len(), 6);
        assert_eq!(first.target, LocationId(24));
        // History is everything before session 6: sessions 0..6, 18 points.
        assert_eq!(first.history.len(), 18);
        // History is chronological and ends before recent starts.
        assert!(first.history.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(first.history.last().unwrap().time < first.recent[0].time);
    }

    #[test]
    fn history_cap_keeps_most_recent() {
        let ds = dataset();
        let cfg = SampleConfig {
            context_sessions: 1,
            max_history: 4,
            min_recent_len: 1,
        };
        let samples = make_samples(&ds, Split::Test, &cfg);
        let s = &samples[0];
        assert_eq!(s.history.len(), 4);
        // Kept points are the latest ones before the recent window.
        assert!(s.history.last().unwrap().time < s.recent[0].time);
        assert!(s.history[0].time.0 > 0);
    }

    #[test]
    fn min_recent_len_filters_short_inputs() {
        let ds = dataset();
        let cfg = SampleConfig {
            context_sessions: 1,
            max_history: 100,
            min_recent_len: 2,
        };
        let samples = make_samples(&ds, Split::Train, &cfg);
        // Only the third point of each session has a 2-point prefix.
        assert_eq!(samples.len(), 7);
        assert!(samples.iter().all(|s| s.recent.len() >= 2));
    }

    #[test]
    fn prefix_labels_follow_the_sequence() {
        let s = Sample {
            user: UserId(0),
            recent: vec![pt(1, 0), pt(2, 1), pt(3, 2)],
            history: vec![],
            target: LocationId(9),
            target_time: Timestamp::from_hours(3),
        };
        assert_eq!(
            s.prefix_labels(),
            vec![LocationId(2), LocationId(3), LocationId(9)]
        );
    }

    #[test]
    fn splits_are_disjoint_in_targets() {
        let ds = dataset();
        let cfg = SampleConfig::train();
        let train = make_samples(&ds, Split::Train, &cfg);
        let val = make_samples(&ds, Split::Val, &cfg);
        let test = make_samples(&ds, Split::Test, &cfg);
        let t_times: std::collections::HashSet<i64> =
            train.iter().map(|s| s.target_time.0).collect();
        for s in val.iter().chain(&test) {
            assert!(!t_times.contains(&s.target_time.0));
        }
        // Chronology: max train target < min test target.
        let max_train = train.iter().map(|s| s.target_time.0).max().unwrap();
        let min_test = test.iter().map(|s| s.target_time.0).min().unwrap();
        assert!(max_train < min_test);
    }
}
