//! Core data model: spatio-temporal points, trajectories, datasets
//! (paper Definitions 1–3).

use serde::{Deserialize, Serialize};

/// Compact location identifier (paper: `l`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LocationId(pub u32);

impl LocationId {
    /// Index form for embedding lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Compact user identifier (paper: `u`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub u32);

impl UserId {
    /// Index form for embedding lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Seconds since the dataset epoch. By convention the epoch falls on a
/// Monday at 00:00, so weekday arithmetic in [`crate::timecode`] is exact.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub i64);

/// Seconds per hour.
pub const HOUR: i64 = 3600;
/// Seconds per day.
pub const DAY: i64 = 24 * HOUR;
/// Seconds per week.
pub const WEEK: i64 = 7 * DAY;

impl Timestamp {
    /// Build from whole hours since the epoch.
    pub fn from_hours(hours: i64) -> Self {
        Timestamp(hours * HOUR)
    }

    /// Whole hours since the epoch.
    pub fn hours(self) -> i64 {
        self.0.div_euclid(HOUR)
    }

    /// Whole days since the epoch.
    pub fn days(self) -> i64 {
        self.0.div_euclid(DAY)
    }

    /// Hour of day, `0..=23`.
    pub fn hour_of_day(self) -> u32 {
        (self.0.div_euclid(HOUR).rem_euclid(24)) as u32
    }

    /// Day of week, `0 = Monday .. 6 = Sunday`.
    pub fn day_of_week(self) -> u32 {
        (self.0.div_euclid(DAY).rem_euclid(7)) as u32
    }

    /// True on Saturday or Sunday.
    pub fn is_weekend(self) -> bool {
        self.day_of_week() >= 5
    }
}

/// A spatio-temporal point `p = (l, t)` (paper Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Point {
    /// Visited location.
    pub loc: LocationId,
    /// Visit time.
    pub time: Timestamp,
}

impl Point {
    /// Shorthand constructor.
    pub fn new(loc: u32, time: Timestamp) -> Self {
        Self {
            loc: LocationId(loc),
            time,
        }
    }
}

/// The chronologically ordered point sequence of one user
/// (paper Definition 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// Owning user.
    pub user: UserId,
    /// Points in non-decreasing time order.
    pub points: Vec<Point>,
}

impl Trajectory {
    /// Build a trajectory, sorting points chronologically.
    pub fn new(user: UserId, mut points: Vec<Point>) -> Self {
        points.sort_by_key(|p| p.time);
        Self { user, points }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when there are no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Verify chronological ordering (cheap O(n) invariant check used by
    /// debug assertions and property tests).
    pub fn is_sorted(&self) -> bool {
        self.points.windows(2).all(|w| w[0].time <= w[1].time)
    }

    /// The recent suffix within the last `c * t_window` seconds of the final
    /// point (paper Definition 3 with `T = t_window`, `c` sessions).
    pub fn recent(&self, c: usize, t_window_secs: i64) -> &[Point] {
        let Some(last) = self.points.last() else {
            return &[];
        };
        let cutoff = last.time.0 - (c as i64) * t_window_secs;
        let start = self.points.partition_point(|p| p.time.0 < cutoff);
        &self.points[start..]
    }
}

/// A raw mobility dataset: one trajectory per user plus vocab sizes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Dataset label (e.g. `"NYC-synth"`).
    pub name: String,
    /// Number of distinct location ids (ids are `0..num_locations`).
    pub num_locations: u32,
    /// One trajectory per user, indexed by `UserId`.
    pub trajectories: Vec<Trajectory>,
}

impl Dataset {
    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.trajectories.len()
    }

    /// Total number of points across users.
    pub fn num_points(&self) -> usize {
        self.trajectories.iter().map(|t| t.len()).sum()
    }

    /// Time range `(min, max)` across all points, if any exist.
    pub fn time_range(&self) -> Option<(Timestamp, Timestamp)> {
        let mut min = None;
        let mut max = None;
        for t in &self.trajectories {
            for p in &t.points {
                min = Some(min.map_or(p.time, |m: Timestamp| m.min(p.time)));
                max = Some(max.map_or(p.time, |m: Timestamp| m.max(p.time)));
            }
        }
        min.zip(max)
    }

    /// Validate internal invariants: per-user sorted points, location ids in
    /// range, trajectory user ids matching their index.
    pub fn validate(&self) -> Result<(), String> {
        for (i, t) in self.trajectories.iter().enumerate() {
            if t.user.index() != i {
                return Err(format!(
                    "trajectory {i} has user id {} (must equal its index)",
                    t.user.0
                ));
            }
            if !t.is_sorted() {
                return Err(format!("trajectory {i} is not chronologically sorted"));
            }
            if let Some(p) = t.points.iter().find(|p| p.loc.0 >= self.num_locations) {
                return Err(format!(
                    "trajectory {i} references location {} >= num_locations {}",
                    p.loc.0, self.num_locations
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_calendar_arithmetic() {
        // Epoch is Monday 00:00.
        let t = Timestamp(0);
        assert_eq!(t.day_of_week(), 0);
        assert_eq!(t.hour_of_day(), 0);
        assert!(!t.is_weekend());

        let sat_noon = Timestamp(5 * DAY + 12 * HOUR);
        assert_eq!(sat_noon.day_of_week(), 5);
        assert_eq!(sat_noon.hour_of_day(), 12);
        assert!(sat_noon.is_weekend());

        let next_week = Timestamp(WEEK + 3 * HOUR);
        assert_eq!(next_week.day_of_week(), 0);
        assert_eq!(next_week.hour_of_day(), 3);

        assert_eq!(Timestamp::from_hours(25).hours(), 25);
        assert_eq!(Timestamp::from_hours(49).days(), 2);
    }

    #[test]
    fn timestamp_negative_times_wrap_correctly() {
        // One hour before the epoch is Sunday 23:00.
        let t = Timestamp(-HOUR);
        assert_eq!(t.day_of_week(), 6);
        assert_eq!(t.hour_of_day(), 23);
        assert!(t.is_weekend());
    }

    #[test]
    fn trajectory_sorts_points() {
        let tr = Trajectory::new(
            UserId(0),
            vec![
                Point::new(1, Timestamp(100)),
                Point::new(2, Timestamp(50)),
                Point::new(3, Timestamp(75)),
            ],
        );
        assert!(tr.is_sorted());
        assert_eq!(tr.points[0].loc, LocationId(2));
        assert_eq!(tr.len(), 3);
        assert!(!tr.is_empty());
    }

    #[test]
    fn recent_respects_definition_3() {
        // Points at hours 0, 10, 50, 100, 140; window T = 24h, c = 2.
        let tr = Trajectory::new(
            UserId(0),
            [0i64, 10, 50, 100, 140]
                .iter()
                .map(|&h| Point::new(0, Timestamp::from_hours(h)))
                .collect(),
        );
        // Cutoff = 140h - 48h = 92h -> points at 100 and 140.
        let rec = tr.recent(2, 24 * HOUR);
        assert_eq!(rec.len(), 2);
        assert_eq!(rec[0].time.hours(), 100);
        // A huge window returns everything.
        assert_eq!(tr.recent(100, 24 * HOUR).len(), 5);
        // Empty trajectory returns empty.
        let empty = Trajectory::new(UserId(0), vec![]);
        assert!(empty.recent(2, 24 * HOUR).is_empty());
    }

    #[test]
    fn dataset_stats_and_validation() {
        let ds = Dataset {
            name: "test".into(),
            num_locations: 5,
            trajectories: vec![
                Trajectory::new(UserId(0), vec![Point::new(0, Timestamp(10))]),
                Trajectory::new(
                    UserId(1),
                    vec![Point::new(4, Timestamp(5)), Point::new(1, Timestamp(20))],
                ),
            ],
        };
        assert_eq!(ds.num_users(), 2);
        assert_eq!(ds.num_points(), 3);
        assert_eq!(ds.time_range(), Some((Timestamp(5), Timestamp(20))));
        ds.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_location_and_user_ids() {
        let mut ds = Dataset {
            name: "bad".into(),
            num_locations: 2,
            trajectories: vec![Trajectory::new(
                UserId(0),
                vec![Point::new(7, Timestamp(0))],
            )],
        };
        assert!(ds.validate().unwrap_err().contains("location 7"));
        ds.trajectories[0].points[0].loc = LocationId(1);
        ds.trajectories[0].user = UserId(3);
        assert!(ds.validate().unwrap_err().contains("user id 3"));
    }

    #[test]
    fn empty_dataset_has_no_time_range() {
        let ds = Dataset {
            name: "empty".into(),
            num_locations: 0,
            trajectories: vec![],
        };
        assert_eq!(ds.time_range(), None);
        assert_eq!(ds.num_points(), 0);
        ds.validate().unwrap();
    }
}
