//! Mobility-shift diagnostics reproducing Fig. 1(b) and Fig. 1(c).
//!
//! Fig. 1(b): a per-user heatmap of visit counts (locations x biweekly
//! periods) revealing locations that appear/disappear over time.
//!
//! Fig. 1(c): the population-level decay of cosine similarity between each
//! biweekly visit distribution and the historical (first three months)
//! distribution.

use crate::types::{Dataset, Point, DAY};
use adamove_tensor::stats::cosine_similarity;
use adamove_tensor::Matrix;

/// Seconds in one biweekly bucket.
pub const BIWEEK: i64 = 14 * DAY;

/// Visit-count distribution over locations for a slice of points.
pub fn visit_distribution(points: &[Point], num_locations: u32) -> Vec<f32> {
    let mut counts = vec![0.0f32; num_locations as usize];
    for p in points {
        counts[p.loc.index()] += 1.0;
    }
    counts
}

/// Fig. 1(b): visit counts per (location, biweekly period) for one user.
///
/// Rows are locations the user ever visited (returned alongside the matrix,
/// ordered by total visits, capped at `max_locations`), columns are
/// consecutive two-week periods from the dataset epoch.
pub fn user_heatmap(
    points: &[Point],
    num_locations: u32,
    horizon_days: i64,
    max_locations: usize,
) -> (Vec<u32>, Matrix) {
    let periods = ((horizon_days * DAY + BIWEEK - 1) / BIWEEK).max(1) as usize;
    let mut full = vec![vec![0.0f32; periods]; num_locations as usize];
    for p in points {
        let b = (p.time.0.div_euclid(BIWEEK)) as usize;
        if b < periods {
            full[p.loc.index()][b] += 1.0;
        }
    }
    let mut order: Vec<(u32, f32)> = full
        .iter()
        .enumerate()
        .map(|(l, row)| (l as u32, row.iter().sum()))
        .filter(|&(_, total)| total > 0.0)
        .collect();
    order.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    order.truncate(max_locations);
    let locs: Vec<u32> = order.iter().map(|&(l, _)| l).collect();
    let mut m = Matrix::zeros(locs.len(), periods);
    for (r, &l) in locs.iter().enumerate() {
        m.row_mut(r).copy_from_slice(&full[l as usize]);
    }
    (locs, m)
}

/// One point of the Fig. 1(c) similarity-decay curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityPoint {
    /// Week index at the end of the biweekly bucket (2, 4, 6, ...).
    pub week: i64,
    /// Mean cosine similarity against the historical distribution.
    pub similarity: f32,
}

/// Fig. 1(c): for every user, compare each biweekly visit distribution after
/// `history_days` with that user's historical distribution (their first
/// `history_days`), then average the cosine similarities over users.
///
/// Buckets with no data for a user are skipped for that user; a bucket with
/// no data from anyone is omitted from the output.
pub fn similarity_decay(dataset: &Dataset, history_days: i64) -> Vec<SimilarityPoint> {
    let history_end = history_days * DAY;
    let Some((_, max_t)) = dataset.time_range() else {
        return Vec::new();
    };
    let num_buckets = ((max_t.0 - history_end) / BIWEEK + 1).max(0) as usize;
    if num_buckets == 0 {
        return Vec::new();
    }

    // Per-user historical distribution.
    let mut accum = vec![(0.0f32, 0usize); num_buckets];
    for tr in &dataset.trajectories {
        let hist_points: Vec<Point> = tr
            .points
            .iter()
            .copied()
            .filter(|p| p.time.0 < history_end)
            .collect();
        if hist_points.is_empty() {
            continue;
        }
        let hist = visit_distribution(&hist_points, dataset.num_locations);
        for (b, slot) in accum.iter_mut().enumerate() {
            let start = history_end + b as i64 * BIWEEK;
            let end = start + BIWEEK;
            let bucket: Vec<Point> = tr
                .points
                .iter()
                .copied()
                .filter(|p| p.time.0 >= start && p.time.0 < end)
                .collect();
            if bucket.is_empty() {
                continue;
            }
            let dist = visit_distribution(&bucket, dataset.num_locations);
            let sim = cosine_similarity(&hist, &dist);
            slot.0 += sim;
            slot.1 += 1;
        }
    }

    accum
        .into_iter()
        .enumerate()
        .filter(|(_, (_, n))| *n > 0)
        .map(|(b, (total, n))| SimilarityPoint {
            week: history_days / 7 + (b as i64 + 1) * 2,
            similarity: total / n as f32,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, CityPreset, Scale};
    use crate::types::{Timestamp, Trajectory, UserId};

    fn pt(loc: u32, day: i64) -> Point {
        Point::new(loc, Timestamp(day * DAY + 12 * 3600))
    }

    #[test]
    fn visit_distribution_counts() {
        let pts = vec![pt(0, 0), pt(0, 1), pt(2, 1)];
        let d = visit_distribution(&pts, 4);
        assert_eq!(d, vec![2.0, 0.0, 1.0, 0.0]);
        assert!(visit_distribution(&[], 3).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn heatmap_orders_locations_by_total_visits() {
        // Location 5 visited 3x in period 0; location 2 visited once in
        // period 1 (day 15 falls in the second biweek).
        let pts = vec![pt(5, 0), pt(5, 1), pt(5, 2), pt(2, 15)];
        let (locs, m) = user_heatmap(&pts, 10, 28, 10);
        assert_eq!(locs, vec![5, 2]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(1, 1), 1.0);
    }

    #[test]
    fn heatmap_caps_location_count() {
        let pts: Vec<Point> = (0..20).map(|l| pt(l, 0)).collect();
        let (locs, m) = user_heatmap(&pts, 30, 14, 5);
        assert_eq!(locs.len(), 5);
        assert_eq!(m.rows(), 5);
    }

    #[test]
    fn stable_user_keeps_high_similarity() {
        // A user visiting the same place forever: similarity stays 1.
        let points: Vec<Point> = (0..120).map(|d| pt(3, d)).collect();
        let ds = Dataset {
            name: "stable".into(),
            num_locations: 5,
            trajectories: vec![Trajectory::new(UserId(0), points)],
        };
        let decay = similarity_decay(&ds, 90);
        assert!(!decay.is_empty());
        for p in &decay {
            assert!(
                (p.similarity - 1.0).abs() < 1e-6,
                "week {}: {}",
                p.week,
                p.similarity
            );
        }
    }

    #[test]
    fn shifting_user_similarity_drops() {
        // Visits location 0 for 90 days, then location 1 only.
        let mut points: Vec<Point> = (0..90).map(|d| pt(0, d)).collect();
        points.extend((90..140).map(|d| pt(1, d)));
        let ds = Dataset {
            name: "shift".into(),
            num_locations: 5,
            trajectories: vec![Trajectory::new(UserId(0), points)],
        };
        let decay = similarity_decay(&ds, 90);
        assert!(!decay.is_empty());
        for p in &decay {
            assert!(
                p.similarity.abs() < 1e-6,
                "expected orthogonal, got {}",
                p.similarity
            );
        }
    }

    #[test]
    fn synthetic_city_similarity_decays_like_fig1c() {
        // The headline Fig. 1(c) property: similarity decreases over time.
        let mut cfg = CityPreset::Tky.config(Scale::Small);
        cfg.num_users = 40;
        cfg.days = 180;
        cfg.shift_at = 0.55; // hard shifts land after the history window
        let ds = generate(&cfg);
        let decay = similarity_decay(&ds, 90);
        assert!(
            decay.len() >= 4,
            "need several buckets, got {}",
            decay.len()
        );
        let first = decay.first().unwrap().similarity;
        let last = decay.last().unwrap().similarity;
        assert!(
            last < first,
            "similarity should decay: first {first}, last {last}"
        );
    }

    #[test]
    fn empty_dataset_produces_empty_curve() {
        let ds = Dataset {
            name: "empty".into(),
            num_locations: 0,
            trajectories: vec![],
        };
        assert!(similarity_decay(&ds, 90).is_empty());
    }

    #[test]
    fn weeks_are_labeled_from_history_end() {
        let points: Vec<Point> = (0..120).map(|d| pt(0, d)).collect();
        let ds = Dataset {
            name: "labels".into(),
            num_locations: 2,
            trajectories: vec![Trajectory::new(UserId(0), points)],
        };
        let decay = similarity_decay(&ds, 90);
        // History covers ~12.8 weeks; first bucket ends at week 14.857 -> label 14.
        assert_eq!(decay[0].week, 90 / 7 + 2);
    }
}
