//! The §IV-A pre-processing pipeline.
//!
//! 1. Drop locations visited by fewer than `min_users_per_location` users.
//! 2. Segment each user's remaining points into sessions of
//!    `session_window_hours` (fixed windows anchored at the dataset epoch).
//! 3. Drop sessions with fewer than `min_points_per_session` points.
//! 4. Drop users with fewer than `min_sessions_per_user` sessions.
//! 5. Remap surviving location and user ids to compact ranges.
//!
//! The output [`ProcessedDataset`] is the input to splitting/sampling and
//! carries the [`DatasetStats`] that regenerate Table I.

use crate::types::{Dataset, LocationId, Point, UserId, HOUR};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Pipeline thresholds; defaults are the paper's.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PreprocessConfig {
    /// Locations visited by fewer distinct users than this are noise.
    pub min_users_per_location: usize,
    /// Session window `T` in hours.
    pub session_window_hours: i64,
    /// Sessions shorter than this are dropped.
    pub min_points_per_session: usize,
    /// Users with fewer sessions than this are inactive.
    pub min_sessions_per_user: usize,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        Self {
            min_users_per_location: 10,
            session_window_hours: 72,
            min_points_per_session: 5,
            min_sessions_per_user: 5,
        }
    }
}

/// One user's session-segmented trajectory after cleaning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserSessions {
    /// Compact post-remap user id.
    pub user: UserId,
    /// Sessions in chronological order; each session's points are sorted.
    pub sessions: Vec<Vec<Point>>,
}

impl UserSessions {
    /// Total points across sessions.
    pub fn num_points(&self) -> usize {
        self.sessions.iter().map(|s| s.len()).sum()
    }
}

/// Statistics in the shape of the paper's Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset label.
    pub name: String,
    /// Surviving users.
    pub num_users: usize,
    /// Surviving distinct locations.
    pub num_locations: usize,
    /// Surviving sessions — the paper's "#. of Traj." counts sessions.
    pub num_trajectories: usize,
    /// Surviving points.
    pub num_points: usize,
    /// Covered time span in days.
    pub time_span_days: i64,
}

/// A cleaned, session-segmented, id-compacted dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcessedDataset {
    /// Dataset label.
    pub name: String,
    /// Compact location vocabulary size.
    pub num_locations: u32,
    /// Session window `T` in seconds (needed by Definition 3 downstream).
    pub session_window_secs: i64,
    /// One entry per surviving user, indexed by compact `UserId`.
    pub users: Vec<UserSessions>,
}

impl ProcessedDataset {
    /// Number of surviving users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Table I statistics.
    pub fn stats(&self) -> DatasetStats {
        let num_points: usize = self.users.iter().map(|u| u.num_points()).sum();
        let num_trajectories: usize = self.users.iter().map(|u| u.sessions.len()).sum();
        let (min, max) = self
            .users
            .iter()
            .flat_map(|u| u.sessions.iter().flatten())
            .fold((i64::MAX, i64::MIN), |(lo, hi), p| {
                (lo.min(p.time.0), hi.max(p.time.0))
            });
        let time_span_days = if num_points == 0 {
            0
        } else {
            (max - min) / (24 * HOUR) + 1
        };
        DatasetStats {
            name: self.name.clone(),
            num_users: self.users.len(),
            num_locations: self.num_locations as usize,
            num_trajectories,
            num_points,
            time_span_days,
        }
    }

    /// Check invariants: ids compact, sessions ordered and non-empty.
    pub fn validate(&self) -> Result<(), String> {
        for (i, u) in self.users.iter().enumerate() {
            if u.user.index() != i {
                return Err(format!("user {} at index {i}", u.user.0));
            }
            let mut last_end = i64::MIN;
            for (si, s) in u.sessions.iter().enumerate() {
                if s.is_empty() {
                    return Err(format!("user {i} session {si} is empty"));
                }
                if s.windows(2).any(|w| w[0].time > w[1].time) {
                    return Err(format!("user {i} session {si} unsorted"));
                }
                if s[0].time.0 < last_end {
                    return Err(format!("user {i} session {si} overlaps previous"));
                }
                last_end = s.last().unwrap().time.0;
                if let Some(p) = s.iter().find(|p| p.loc.0 >= self.num_locations) {
                    return Err(format!(
                        "user {i} references location {} >= {}",
                        p.loc.0, self.num_locations
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Run the full pipeline over a raw dataset.
pub fn preprocess(dataset: &Dataset, config: &PreprocessConfig) -> ProcessedDataset {
    // Step 1: count distinct users per location.
    let mut users_per_loc: HashMap<LocationId, HashSet<UserId>> = HashMap::new();
    for tr in &dataset.trajectories {
        for p in &tr.points {
            users_per_loc.entry(p.loc).or_default().insert(tr.user);
        }
    }
    let kept_locations: HashSet<LocationId> = users_per_loc
        .iter()
        .filter(|(_, users)| users.len() >= config.min_users_per_location)
        .map(|(&loc, _)| loc)
        .collect();

    let window = config.session_window_hours * HOUR;
    let mut survivors: Vec<(UserId, Vec<Vec<Point>>)> = Vec::new();

    for tr in &dataset.trajectories {
        // Steps 2-3: segment into fixed windows, drop short sessions.
        let mut sessions: Vec<Vec<Point>> = Vec::new();
        let mut current: Vec<Point> = Vec::new();
        let mut current_window = i64::MIN;
        for p in tr.points.iter().filter(|p| kept_locations.contains(&p.loc)) {
            let w = p.time.0.div_euclid(window);
            if w != current_window {
                if current.len() >= config.min_points_per_session {
                    sessions.push(std::mem::take(&mut current));
                } else {
                    current.clear();
                }
                current_window = w;
            }
            current.push(*p);
        }
        if current.len() >= config.min_points_per_session {
            sessions.push(current);
        }
        // Step 4: drop inactive users.
        if sessions.len() >= config.min_sessions_per_user {
            survivors.push((tr.user, sessions));
        }
    }

    // Step 5: remap ids. Locations are numbered in first-appearance order
    // over the surviving data for determinism.
    let mut loc_map: HashMap<LocationId, u32> = HashMap::new();
    let mut users = Vec::with_capacity(survivors.len());
    for (new_uid, (_, sessions)) in survivors.into_iter().enumerate() {
        let remapped: Vec<Vec<Point>> = sessions
            .into_iter()
            .map(|s| {
                s.into_iter()
                    .map(|p| {
                        let next_id = loc_map.len() as u32;
                        let id = *loc_map.entry(p.loc).or_insert(next_id);
                        Point {
                            loc: LocationId(id),
                            time: p.time,
                        }
                    })
                    .collect()
            })
            .collect();
        users.push(UserSessions {
            user: UserId(new_uid as u32),
            sessions: remapped,
        });
    }

    ProcessedDataset {
        name: dataset.name.clone(),
        num_locations: loc_map.len() as u32,
        session_window_secs: window,
        users,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Timestamp, Trajectory};

    /// A point at hour `h` visiting location `loc`.
    fn pt(loc: u32, h: i64) -> Point {
        Point::new(loc, Timestamp::from_hours(h))
    }

    /// Build a raw dataset where every location is visited by enough users.
    fn dense_dataset(num_users: u32) -> Dataset {
        let trajectories = (0..num_users)
            .map(|u| {
                // Two 72h windows with 5 points each: hours 0..40 step 10
                // (window 0) and 80..120 step 10 (window 1).
                let mut points: Vec<Point> = (0..5).map(|i| pt(i % 3, i as i64 * 10)).collect();
                points.extend((0..5).map(|i| pt(i % 3, 80 + i as i64 * 10)));
                Trajectory::new(UserId(u), points)
            })
            .collect();
        Dataset {
            name: "dense".into(),
            num_locations: 3,
            trajectories,
        }
    }

    #[test]
    fn pipeline_keeps_well_formed_data() {
        let raw = dense_dataset(12);
        let cfg = PreprocessConfig {
            min_sessions_per_user: 2,
            ..PreprocessConfig::default()
        };
        let out = preprocess(&raw, &cfg);
        out.validate().unwrap();
        assert_eq!(out.num_users(), 12);
        assert_eq!(out.num_locations, 3);
        let stats = out.stats();
        assert_eq!(stats.num_trajectories, 24); // 2 sessions x 12 users
        assert_eq!(stats.num_points, 120);
        assert!(stats.time_span_days >= 5);
    }

    #[test]
    fn rare_locations_are_filtered() {
        let mut raw = dense_dataset(12);
        // User 0 sneaks in a private location 99 visited by nobody else.
        raw.num_locations = 100;
        raw.trajectories[0].points.push(pt(99, 35));
        raw.trajectories[0].points.sort_by_key(|p| p.time);
        let cfg = PreprocessConfig {
            min_sessions_per_user: 2,
            ..PreprocessConfig::default()
        };
        let out = preprocess(&raw, &cfg);
        // Location 99 must be gone and ids must still be compact.
        assert_eq!(out.num_locations, 3);
        out.validate().unwrap();
    }

    #[test]
    fn short_sessions_are_dropped() {
        // One user with a 5-point session and a 2-point session.
        let mut points: Vec<Point> = (0..5).map(|i| pt(0, i as i64 * 10)).collect();
        points.push(pt(0, 80));
        points.push(pt(0, 90));
        let raw = Dataset {
            name: "short".into(),
            num_locations: 1,
            trajectories: vec![Trajectory::new(UserId(0), points)],
        };
        let cfg = PreprocessConfig {
            min_users_per_location: 1,
            min_sessions_per_user: 1,
            ..PreprocessConfig::default()
        };
        let out = preprocess(&raw, &cfg);
        assert_eq!(out.users[0].sessions.len(), 1);
        assert_eq!(out.users[0].sessions[0].len(), 5);
    }

    #[test]
    fn inactive_users_are_dropped_and_ids_compacted() {
        let mut raw = dense_dataset(12);
        // User 3 loses most points, ending with a single session.
        raw.trajectories[3].points.truncate(5);
        let cfg = PreprocessConfig {
            min_sessions_per_user: 2,
            ..PreprocessConfig::default()
        };
        let out = preprocess(&raw, &cfg);
        assert_eq!(out.num_users(), 11);
        // Ids must be 0..11 compact.
        out.validate().unwrap();
    }

    #[test]
    fn session_windows_are_anchored_at_epoch() {
        // Points at hours 70 and 74 fall into different 72h windows even
        // though they are only 4 hours apart.
        let points: Vec<Point> = vec![
            pt(0, 60),
            pt(0, 62),
            pt(0, 64),
            pt(0, 66),
            pt(0, 70),
            pt(0, 74),
            pt(0, 76),
            pt(0, 78),
            pt(0, 80),
            pt(0, 82),
        ];
        let raw = Dataset {
            name: "windows".into(),
            num_locations: 1,
            trajectories: vec![Trajectory::new(UserId(0), points)],
        };
        let cfg = PreprocessConfig {
            min_users_per_location: 1,
            min_points_per_session: 5,
            min_sessions_per_user: 1,
            session_window_hours: 72,
        };
        let out = preprocess(&raw, &cfg);
        assert_eq!(out.users[0].sessions.len(), 2);
        assert_eq!(out.users[0].sessions[0].last().unwrap().time.hours(), 70);
        assert_eq!(out.users[0].sessions[1][0].time.hours(), 74);
    }

    #[test]
    fn empty_input_survives() {
        let raw = Dataset {
            name: "empty".into(),
            num_locations: 0,
            trajectories: vec![],
        };
        let out = preprocess(&raw, &PreprocessConfig::default());
        assert_eq!(out.num_users(), 0);
        assert_eq!(out.num_locations, 0);
        assert_eq!(out.stats().time_span_days, 0);
        out.validate().unwrap();
    }
}
