//! Property and scenario tests for the synthetic generator: across random
//! configurations the output must stay structurally valid, periodic and
//! calibratable — the guarantees the experiment harness relies on.

use adamove_mobility::analysis::{similarity_decay, visit_distribution};
use adamove_mobility::synth::{generate, CityConfig, CityPreset, Scale};
use adamove_mobility::timecode::time_code;
use adamove_mobility::types::DAY;
use adamove_mobility::{preprocess, PreprocessConfig};
use proptest::prelude::*;

fn config(users: usize, locations: u32, days: i64, rate: f64, seed: u64) -> CityConfig {
    CityConfig {
        num_users: users,
        num_locations: locations,
        days,
        checkin_rate: rate,
        seed,
        ..CityPreset::Nyc.config(Scale::Small)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_datasets_are_always_valid(
        users in 5usize..30,
        locations in 50u32..200,
        days in 20i64..60,
        seed in 0u64..1000,
    ) {
        let ds = generate(&config(users, locations, days, 0.15, seed));
        prop_assert!(ds.validate().is_ok());
        prop_assert_eq!(ds.num_users(), users);
        if let Some((lo, hi)) = ds.time_range() {
            prop_assert!(lo.0 >= 0);
            prop_assert!(hi.0 < days * DAY);
        }
    }

    #[test]
    fn checkin_rate_controls_density(seed in 0u64..50) {
        let sparse = generate(&config(10, 100, 30, 0.08, seed));
        let dense = generate(&config(10, 100, 30, 0.32, seed));
        prop_assert!(
            dense.num_points() > sparse.num_points() * 2,
            "dense {} vs sparse {}",
            dense.num_points(),
            sparse.num_points()
        );
    }

    #[test]
    fn time_codes_cover_valid_range(seed in 0u64..50) {
        let ds = generate(&config(8, 80, 21, 0.2, seed));
        for tr in &ds.trajectories {
            for p in &tr.points {
                prop_assert!(time_code(p.time) < 48);
            }
        }
    }

    #[test]
    fn preprocessing_of_generated_data_is_stable(seed in 0u64..20) {
        let ds = generate(&config(25, 150, 50, 0.2, seed));
        let out = preprocess(&ds, &PreprocessConfig::default());
        prop_assert!(out.validate().is_ok());
        // Some users must survive at these densities.
        prop_assert!(out.num_users() > 0, "everything filtered away");
    }
}

#[test]
fn night_hours_are_quiet() {
    let ds = generate(&config(20, 120, 40, 0.3, 5));
    let total = ds.num_points() as f64;
    let night = ds
        .trajectories
        .iter()
        .flat_map(|t| &t.points)
        .filter(|p| p.time.hour_of_day() < 6)
        .count() as f64;
    // Personas sleep 0-6; only exploration noise checks in then.
    assert!(
        night / total < 0.10,
        "night share {} too high",
        night / total
    );
}

#[test]
fn weekday_and_weekend_distributions_differ() {
    let ds = generate(&config(20, 120, 56, 0.3, 6));
    let mut weekday = Vec::new();
    let mut weekend = Vec::new();
    for tr in &ds.trajectories {
        for p in &tr.points {
            if p.time.is_weekend() {
                weekend.push(*p);
            } else {
                weekday.push(*p);
            }
        }
    }
    let dw = visit_distribution(&weekday, ds.num_locations);
    let de = visit_distribution(&weekend, ds.num_locations);
    let sim = adamove_tensor::stats::cosine_similarity(&dw, &de);
    assert!(
        sim < 0.95,
        "weekday/weekend distributions too similar: {sim}"
    );
}

#[test]
fn higher_shift_fraction_decays_similarity_faster() {
    let mut stable = config(30, 150, 180, 0.2, 7);
    stable.shift_fraction = 0.0;
    stable.weekly_drift = 0.0;
    let mut shifty = stable.clone();
    shifty.shift_fraction = 0.9;
    shifty.shift_at = 0.55;

    let d_stable = similarity_decay(&generate(&stable), 90);
    let d_shifty = similarity_decay(&generate(&shifty), 90);
    let last = |d: &[adamove_mobility::analysis::SimilarityPoint]| {
        d.last().map(|p| p.similarity).unwrap_or(0.0)
    };
    assert!(
        last(&d_shifty) < last(&d_stable),
        "shifted city should end less similar: {} vs {}",
        last(&d_shifty),
        last(&d_stable)
    );
}

#[test]
fn leisure_routes_are_sequential() {
    // The ordered evening routes mean consecutive evening check-ins are a
    // strong transition signal: P(next | current) in the 18-21h window is
    // concentrated, unlike a uniform draw over the leisure set.
    let mut cfg = config(15, 150, 90, 0.9, 8);
    cfg.exploration = 0.0;
    cfg.weekly_drift = 0.0;
    cfg.shift_fraction = 0.0;
    let ds = generate(&cfg);
    let mut transitions: std::collections::HashMap<
        (u32, u32),
        std::collections::HashMap<u32, u32>,
    > = std::collections::HashMap::new();
    for tr in &ds.trajectories {
        for w in tr.points.windows(2) {
            let (a, b) = (w[0], w[1]);
            // Personas carry a +-1h phase offset, so only wall-clock
            // 19-20h is guaranteed to be inside everyone's leisure window.
            let evening = |h: u32| (19..=20).contains(&h);
            if evening(a.time.hour_of_day())
                && evening(b.time.hour_of_day())
                && a.time.days() == b.time.days()
            {
                *transitions
                    .entry((tr.user.0, a.loc.0))
                    .or_default()
                    .entry(b.loc.0)
                    .or_insert(0) += 1;
            }
        }
    }
    // For rows with enough mass, the modal successor should dominate.
    let mut dominated = 0usize;
    let mut eligible = 0usize;
    for successors in transitions.values() {
        let total: u32 = successors.values().sum();
        if total >= 5 {
            eligible += 1;
            let max = *successors.values().max().unwrap();
            if max as f64 >= 0.8 * total as f64 {
                dominated += 1;
            }
        }
    }
    assert!(eligible > 10, "not enough evening transitions to test");
    assert!(
        dominated as f64 > 0.7 * eligible as f64,
        "evening transitions not sequential enough: {dominated}/{eligible}"
    );
}
