//! Parameter storage shared by graphs and optimisers.

use adamove_tensor::Matrix;

/// Opaque handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) u32);

impl ParamId {
    /// Index into the owning store.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A named trainable parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Human-readable name, e.g. `"encoder.lstm.w_ih"` — used by the
    /// serialisation layer and in error messages.
    pub name: String,
    /// Current value.
    pub value: Matrix,
}

/// Flat store of all trainable parameters of a model.
///
/// Graphs read values from the store during the forward pass; the gradients
/// produced by [`crate::Graph::backward`] are indexed by [`ParamId`] and
/// applied by an optimiser.
#[derive(Debug, Default, Clone)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter, returning its handle.
    pub fn register(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let id = ParamId(
            u32::try_from(self.params.len()).expect("ParamStore: more than u32::MAX parameters"),
        );
        self.params.push(Param {
            name: name.into(),
            value,
        });
        id
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Value of a parameter.
    #[inline]
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.index()].value
    }

    /// Mutable value of a parameter (used by optimisers and by PTTA's
    /// test-time weight update).
    #[inline]
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.index()].value
    }

    /// Full parameter record.
    pub fn param(&self, id: ParamId) -> &Param {
        &self.params[id.index()]
    }

    /// Iterate `(id, param)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Param)> {
        self.params
            .iter()
            .enumerate()
            .map(|(i, p)| (ParamId(i as u32), p))
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Look a parameter up by name (linear scan; used by serialisation).
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.params
            .iter()
            .position(|p| p.name == name)
            .map(|i| ParamId(i as u32))
    }
}

/// Gradients produced by one backward pass, indexed by [`ParamId`].
///
/// Entries are `None` for parameters the loss does not depend on, so sparse
/// updates (e.g. an embedding table where only a few rows were gathered)
/// still allocate a dense matrix only for the touched parameters.
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// A gradient map with one (empty) slot per parameter in `store`.
    pub fn zeros_like(store: &ParamStore) -> Self {
        Self {
            grads: vec![None; store.len()],
        }
    }

    /// Gradient for one parameter, if the loss depended on it.
    pub fn get(&self, id: ParamId) -> Option<&Matrix> {
        self.grads.get(id.index()).and_then(|g| g.as_ref())
    }

    /// Accumulate `delta` into the slot for `id`.
    ///
    /// # Panics
    /// Panics if an existing gradient has a different shape.
    pub fn accumulate(&mut self, id: ParamId, delta: &Matrix) {
        let slot = &mut self.grads[id.index()];
        match slot {
            Some(g) => g
                .add_assign(delta)
                .expect("Gradients::accumulate: shape mismatch"),
            None => *slot = Some(delta.clone()),
        }
    }

    /// Accumulate into a single row of the slot for `id` (embedding scatter).
    pub fn accumulate_row(
        &mut self,
        id: ParamId,
        shape: (usize, usize),
        row: usize,
        delta: &[f32],
    ) {
        let slot = &mut self.grads[id.index()];
        let g = slot.get_or_insert_with(|| Matrix::zeros(shape.0, shape.1));
        debug_assert_eq!(g.shape(), shape);
        for (o, &d) in g.row_mut(row).iter_mut().zip(delta) {
            *o += d;
        }
    }

    /// Merge another gradient map into this one (used when accumulating
    /// gradients across several backward passes before an optimiser step).
    pub fn merge(&mut self, other: &Gradients) {
        assert_eq!(
            self.grads.len(),
            other.grads.len(),
            "Gradients::merge: store size mismatch"
        );
        for (i, g) in other.grads.iter().enumerate() {
            if let Some(g) = g {
                self.accumulate(ParamId(i as u32), g);
            }
        }
    }

    /// Scale every gradient in place (e.g. `1/num_microbatches`).
    pub fn scale(&mut self, alpha: f32) {
        for g in self.grads.iter_mut().flatten() {
            g.map_inplace(|v| v * alpha);
        }
    }

    /// Global L2 norm over all gradients, for clipping diagnostics.
    pub fn global_norm(&self) -> f32 {
        self.grads
            .iter()
            .flatten()
            .map(|g| {
                let n = g.frobenius_norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Clip gradients to a maximum global norm; returns the pre-clip norm.
    pub fn clip_global_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            self.scale(scale);
        }
        norm
    }

    /// Iterate `(id, grad)` pairs for present gradients.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.grads
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.as_ref().map(|g| (ParamId(i as u32), g)))
    }

    /// Number of parameters with a gradient present.
    pub fn num_present(&self) -> usize {
        self.grads.iter().filter(|g| g.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut store = ParamStore::new();
        let a = store.register("w", Matrix::zeros(2, 3));
        let b = store.register("b", Matrix::zeros(1, 3));
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_scalars(), 9);
        assert_eq!(store.value(a).shape(), (2, 3));
        assert_eq!(store.find("b"), Some(b));
        assert_eq!(store.find("missing"), None);
        assert_eq!(store.param(a).name, "w");
    }

    #[test]
    fn gradients_accumulate_and_merge() {
        let mut store = ParamStore::new();
        let a = store.register("a", Matrix::zeros(1, 2));
        let b = store.register("b", Matrix::zeros(1, 2));

        let mut g1 = Gradients::zeros_like(&store);
        g1.accumulate(a, &Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        g1.accumulate(a, &Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        assert_eq!(g1.get(a).unwrap().as_slice(), &[2.0, 4.0]);
        assert!(g1.get(b).is_none());
        assert_eq!(g1.num_present(), 1);

        let mut g2 = Gradients::zeros_like(&store);
        g2.accumulate(b, &Matrix::from_vec(1, 2, vec![5.0, 5.0]));
        g1.merge(&g2);
        assert_eq!(g1.get(b).unwrap().as_slice(), &[5.0, 5.0]);
    }

    #[test]
    fn accumulate_row_scatters() {
        let mut store = ParamStore::new();
        let t = store.register("emb", Matrix::zeros(3, 2));
        let mut g = Gradients::zeros_like(&store);
        g.accumulate_row(t, (3, 2), 1, &[1.0, 1.0]);
        g.accumulate_row(t, (3, 2), 1, &[0.5, 0.5]);
        let m = g.get(t).unwrap();
        assert_eq!(m.row(0), &[0.0, 0.0]);
        assert_eq!(m.row(1), &[1.5, 1.5]);
    }

    #[test]
    fn clip_global_norm_scales_down_only_when_needed() {
        let mut store = ParamStore::new();
        let a = store.register("a", Matrix::zeros(1, 2));
        let mut g = Gradients::zeros_like(&store);
        g.accumulate(a, &Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        let pre = g.clip_global_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((g.global_norm() - 1.0).abs() < 1e-6);
        // Already within the bound: untouched.
        let pre2 = g.clip_global_norm(10.0);
        assert!((pre2 - 1.0).abs() < 1e-6);
        assert!((g.global_norm() - 1.0).abs() < 1e-6);
    }
}
