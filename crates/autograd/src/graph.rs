//! The tape: forward op construction and the backward pass.

use crate::param::{Gradients, ParamId, ParamStore};
use adamove_tensor::matrix::softmax_inplace;
use adamove_tensor::{Device, Matrix};

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(u32);

impl Var {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Differentiable operations. Operands are tape vars; parameters are read
/// from the store by id so large tables are never copied onto the tape.
#[derive(Debug)]
enum Op {
    /// Leaf with no inputs (model input or a constant).
    Constant,
    /// Materialise a parameter's value on the tape.
    ParamRead(ParamId),
    /// Row gather from an embedding table: output is `indices.len() x dim`.
    Gather {
        table: ParamId,
        indices: Vec<u32>,
    },
    /// Affine map `x @ W (+ b)` with `W: in x out`, `b: 1 x out`.
    Linear {
        w: ParamId,
        b: Option<ParamId>,
        x: Var,
    },
    Add(Var, Var),
    Sub(Var, Var),
    /// Element-wise (Hadamard) product.
    Mul(Var, Var),
    Scale(Var, f32),
    AddScalar(Var),
    MatMul(Var, Var),
    /// `a @ b^T` — attention scores `Q K^T`.
    MatMulNT(Var, Var),
    /// `a^T @ b`.
    MatMulTN(Var, Var),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    SoftmaxRows(Var),
    /// Row-wise log-softmax (soft-label losses, e.g. distillation).
    LogSoftmaxRows(Var),
    /// L2-normalise each row (cosine-similarity numerator for InfoNCE).
    NormalizeRows(Var),
    /// `x + row` broadcast over rows; `row` is `1 x cols`.
    AddRowBroadcast(Var, Var),
    /// `x * row` broadcast over rows; `row` is `1 x cols`.
    MulRowBroadcast(Var, Var),
    ConcatCols(Vec<Var>),
    ConcatRows(Vec<Var>),
    SliceCols {
        x: Var,
        start: usize,
        len: usize,
    },
    SliceRows {
        x: Var,
        start: usize,
        len: usize,
    },
    /// Per-row layer normalisation (no affine; compose with broadcasts).
    LayerNormRows {
        x: Var,
        eps: f32,
    },
    /// Mean negative log-likelihood of `targets` under `softmax(x)` rows.
    CrossEntropyLogits {
        x: Var,
        targets: Vec<u32>,
    },
    MeanAll(Var),
    SumAll(Var),
    /// Element-wise multiply by a fixed 0/1 mask (inverted dropout: the mask
    /// is pre-scaled by `1/keep_prob`).
    Dropout {
        x: Var,
        mask: Matrix,
    },
}

#[derive(Debug)]
struct Node {
    value: Matrix,
    op: Op,
}

/// A single forward pass under construction.
///
/// Build ops with the methods below, then call [`Graph::backward`] on a
/// scalar (`1 x 1`) loss to obtain parameter [`Gradients`].
pub struct Graph<'p> {
    params: &'p ParamStore,
    nodes: Vec<Node>,
    device: &'static dyn Device,
}

impl<'p> Graph<'p> {
    /// Start a new tape over `params` on the default CPU backend.
    pub fn new(params: &'p ParamStore) -> Self {
        Self::with_device(params, adamove_tensor::cpu())
    }

    /// Start a new tape over `params` whose matrix products run on
    /// `device`. Backends are pinned bit-identical to the reference
    /// kernels (see [`adamove_tensor::device`]), so the choice affects
    /// speed, never values.
    pub fn with_device(params: &'p ParamStore, device: &'static dyn Device) -> Self {
        Self {
            params,
            nodes: Vec::with_capacity(256),
            device,
        }
    }

    /// The compute backend this tape's matrix products run on.
    pub fn device(&self) -> &'static dyn Device {
        self.device
    }

    /// The parameter store this graph reads from.
    pub fn params(&self) -> &ParamStore {
        self.params
    }

    /// Number of nodes recorded so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Value of a node.
    #[inline]
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.index()].value
    }

    /// Scalar value of a `1 x 1` node.
    pub fn scalar(&self, v: Var) -> f32 {
        let m = self.value(v);
        assert_eq!(m.shape(), (1, 1), "scalar: node is {:?}", m.shape());
        m.as_slice()[0]
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        debug_assert!(
            value.all_finite(),
            "non-finite value produced by {:?}",
            op_name(&op)
        );
        let id = Var(u32::try_from(self.nodes.len()).expect("tape overflow"));
        self.nodes.push(Node { value, op });
        id
    }

    // ---- leaves ---------------------------------------------------------

    /// Insert an input/constant leaf.
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Constant)
    }

    /// Materialise a parameter on the tape (use for small parameters like
    /// layer-norm gains; prefer [`Graph::linear`]/[`Graph::gather`] for big ones).
    pub fn param(&mut self, id: ParamId) -> Var {
        let value = self.params.value(id).clone();
        self.push(value, Op::ParamRead(id))
    }

    // ---- fused parameter ops -------------------------------------------

    /// Gather rows `indices` from embedding table `table`.
    pub fn gather(&mut self, table: ParamId, indices: &[u32]) -> Var {
        let t = self.params.value(table);
        let dim = t.cols();
        let mut out = Matrix::zeros(indices.len(), dim);
        for (r, &i) in indices.iter().enumerate() {
            assert!(
                (i as usize) < t.rows(),
                "gather: index {} out of range for table `{}` with {} rows",
                i,
                self.params.param(table).name,
                t.rows()
            );
            out.row_mut(r).copy_from_slice(t.row(i as usize));
        }
        self.push(
            out,
            Op::Gather {
                table,
                indices: indices.to_vec(),
            },
        )
    }

    /// Affine map `x @ W (+ b)` reading `W`/`b` from the store.
    pub fn linear(&mut self, w: ParamId, b: Option<ParamId>, x: Var) -> Var {
        let wm = self.params.value(w);
        let xv = self.value(x);
        // One fused device pass: `x @ W + b` with the bias added after the
        // full reduction, bit-identical to matmul-then-broadcast.
        let out = self
            .device
            .gemm(xv, wm, b.map(|bid| self.params.value(bid)))
            .unwrap_or_else(|e| panic!("linear `{}`: {e}", self.params.param(w).name));
        self.push(out, Op::Linear { w, b, x })
    }

    // ---- arithmetic ------------------------------------------------------

    /// Element-wise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b)).expect("add");
        self.push(v, Op::Add(a, b))
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b)).expect("sub");
        self.push(v, Op::Sub(a, b))
    }

    /// Element-wise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).hadamard(self.value(b)).expect("mul");
        self.push(v, Op::Mul(a, b))
    }

    /// Multiply by a compile-time constant.
    pub fn scale(&mut self, a: Var, alpha: f32) -> Var {
        let v = self.value(a).scale(alpha);
        self.push(v, Op::Scale(a, alpha))
    }

    /// Add a scalar constant element-wise.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).map(|x| x + c);
        self.push(v, Op::AddScalar(a))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self
            .device
            .matmul(self.value(a), self.value(b))
            .expect("matmul");
        self.push(v, Op::MatMul(a, b))
    }

    /// `a @ b^T`.
    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        let v = self
            .device
            .matmul_nt(self.value(a), self.value(b))
            .expect("matmul_nt");
        self.push(v, Op::MatMulNT(a, b))
    }

    /// `a^T @ b`.
    pub fn matmul_tn(&mut self, a: Var, b: Var) -> Var {
        let v = self
            .device
            .matmul_tn(self.value(a), self.value(b))
            .expect("matmul_tn");
        self.push(v, Op::MatMulTN(a, b))
    }

    // ---- activations ------------------------------------------------------

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let v = self.value(a).softmax_rows();
        self.push(v, Op::SoftmaxRows(a))
    }

    /// Row-wise log-softmax (numerically stable).
    pub fn log_softmax_rows(&mut self, a: Var) -> Var {
        let v = self.value(a).log_softmax_rows();
        self.push(v, Op::LogSoftmaxRows(a))
    }

    /// Row-wise L2 normalisation; zero rows stay zero.
    pub fn normalize_rows(&mut self, a: Var) -> Var {
        let mut v = self.value(a).clone();
        for r in 0..v.rows() {
            let row = v.row_mut(r);
            let n = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            if n > 0.0 {
                for x in row {
                    *x /= n;
                }
            }
        }
        self.push(v, Op::NormalizeRows(a))
    }

    // ---- broadcasting -----------------------------------------------------

    /// `x + row` with `row: 1 x cols` broadcast over the rows of `x`.
    pub fn add_row_broadcast(&mut self, x: Var, row: Var) -> Var {
        let v = self
            .value(x)
            .add_row_broadcast(self.value(row))
            .expect("add_row_broadcast");
        self.push(v, Op::AddRowBroadcast(x, row))
    }

    /// `x * row` with `row: 1 x cols` broadcast over the rows of `x`.
    pub fn mul_row_broadcast(&mut self, x: Var, row: Var) -> Var {
        let xv = self.value(x);
        let rv = self.value(row);
        assert_eq!(
            rv.rows(),
            1,
            "mul_row_broadcast: row operand must be 1 x cols"
        );
        assert_eq!(rv.cols(), xv.cols(), "mul_row_broadcast: width mismatch");
        let mut out = xv.clone();
        for r in 0..out.rows() {
            for (o, &m) in out.row_mut(r).iter_mut().zip(rv.as_slice()) {
                *o *= m;
            }
        }
        self.push(out, Op::MulRowBroadcast(x, row))
    }

    // ---- shape ops ----------------------------------------------------------

    /// Concatenate along columns: `[a | b | ...]`.
    pub fn concat_cols(&mut self, xs: &[Var]) -> Var {
        assert!(!xs.is_empty(), "concat_cols: empty input");
        let mut out = self.value(xs[0]).clone();
        for &x in &xs[1..] {
            out = out.hcat(self.value(x)).expect("concat_cols");
        }
        self.push(out, Op::ConcatCols(xs.to_vec()))
    }

    /// Concatenate along rows (stack).
    pub fn concat_rows(&mut self, xs: &[Var]) -> Var {
        assert!(!xs.is_empty(), "concat_rows: empty input");
        let cols = self.value(xs[0]).cols();
        let total_rows: usize = xs.iter().map(|&x| self.value(x).rows()).sum();
        let mut out = Matrix::zeros(total_rows, cols);
        let mut r = 0;
        for &x in xs {
            let xv = self.value(x);
            assert_eq!(xv.cols(), cols, "concat_rows: width mismatch");
            for i in 0..xv.rows() {
                out.row_mut(r).copy_from_slice(xv.row(i));
                r += 1;
            }
        }
        self.push(out, Op::ConcatRows(xs.to_vec()))
    }

    /// Columns `[start, start+len)` of `x`.
    pub fn slice_cols(&mut self, x: Var, start: usize, len: usize) -> Var {
        let xv = self.value(x);
        assert!(start + len <= xv.cols(), "slice_cols: out of range");
        let mut out = Matrix::zeros(xv.rows(), len);
        for r in 0..xv.rows() {
            out.row_mut(r)
                .copy_from_slice(&xv.row(r)[start..start + len]);
        }
        self.push(out, Op::SliceCols { x, start, len })
    }

    /// Rows `[start, start+len)` of `x`.
    pub fn slice_rows(&mut self, x: Var, start: usize, len: usize) -> Var {
        let xv = self.value(x);
        assert!(start + len <= xv.rows(), "slice_rows: out of range");
        let mut out = Matrix::zeros(len, xv.cols());
        for r in 0..len {
            out.row_mut(r).copy_from_slice(xv.row(start + r));
        }
        self.push(out, Op::SliceRows { x, start, len })
    }

    /// Row `r` of `x` as a `1 x cols` vector.
    pub fn row(&mut self, x: Var, r: usize) -> Var {
        self.slice_rows(x, r, 1)
    }

    // ---- normalisation / regularisation -------------------------------------

    /// Per-row layer normalisation (zero mean, unit variance per row).
    pub fn layer_norm_rows(&mut self, x: Var, eps: f32) -> Var {
        let xv = self.value(x);
        let mut out = xv.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let n = row.len() as f32;
            let mean = row.iter().sum::<f32>() / n;
            let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
            let inv_std = 1.0 / (var + eps).sqrt();
            for v in row {
                *v = (*v - mean) * inv_std;
            }
        }
        self.push(out, Op::LayerNormRows { x, eps })
    }

    /// Inverted dropout with a pre-built mask (entries `0` or `1/keep_prob`).
    pub fn dropout(&mut self, x: Var, mask: Matrix) -> Var {
        let v = self.value(x).hadamard(&mask).expect("dropout mask shape");
        self.push(v, Op::Dropout { x, mask })
    }

    // ---- losses / reductions -------------------------------------------------

    /// Mean cross-entropy of `targets` under row-wise `softmax(x)`.
    ///
    /// `x` is `batch x classes`; `targets` holds one class index per row.
    pub fn cross_entropy_logits(&mut self, x: Var, targets: &[u32]) -> Var {
        let xv = self.value(x);
        assert_eq!(
            xv.rows(),
            targets.len(),
            "cross_entropy_logits: {} rows but {} targets",
            xv.rows(),
            targets.len()
        );
        let ls = xv.log_softmax_rows();
        let mut nll = 0.0;
        for (r, &t) in targets.iter().enumerate() {
            assert!(
                (t as usize) < xv.cols(),
                "cross_entropy_logits: target {} out of range {}",
                t,
                xv.cols()
            );
            nll -= ls.get(r, t as usize);
        }
        let mean = nll / targets.len() as f32;
        self.push(
            Matrix::from_vec(1, 1, vec![mean]),
            Op::CrossEntropyLogits {
                x,
                targets: targets.to_vec(),
            },
        )
    }

    /// Mean of all elements, as a `1 x 1` scalar.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = Matrix::from_vec(1, 1, vec![self.value(a).mean()]);
        self.push(v, Op::MeanAll(a))
    }

    /// Sum of all elements, as a `1 x 1` scalar.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Matrix::from_vec(1, 1, vec![self.value(a).sum()]);
        self.push(v, Op::SumAll(a))
    }

    // ---- backward --------------------------------------------------------------

    /// Reverse-mode pass from a scalar loss; returns parameter gradients.
    ///
    /// # Panics
    /// Panics if `loss` is not `1 x 1`.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward: loss must be a 1x1 scalar"
        );
        let mut node_grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        node_grads[loss.index()] = Some(Matrix::from_vec(1, 1, vec![1.0]));
        let mut param_grads = Gradients::zeros_like(self.params);

        for i in (0..self.nodes.len()).rev() {
            let Some(g) = node_grads[i].take() else {
                continue;
            };
            let node = &self.nodes[i];
            match &node.op {
                Op::Constant => {}
                Op::ParamRead(id) => param_grads.accumulate(*id, &g),
                Op::Gather { table, indices } => {
                    let shape = self.params.value(*table).shape();
                    for (r, &idx) in indices.iter().enumerate() {
                        param_grads.accumulate_row(*table, shape, idx as usize, g.row(r));
                    }
                }
                Op::Linear { w, b, x } => {
                    let xv = self.value(*x);
                    let wm = self.params.value(*w);
                    // dW += x^T g ; db += column sums of g ; dx = g W^T
                    param_grads.accumulate(*w, &self.device.matmul_tn(xv, &g).expect("linear dW"));
                    if let Some(bid) = b {
                        param_grads.accumulate(*bid, &g.sum_rows());
                    }
                    accumulate(
                        &mut node_grads,
                        *x,
                        self.device.matmul_nt(&g, wm).expect("linear dx"),
                    );
                }
                Op::Add(a, b) => {
                    accumulate(&mut node_grads, *a, g.clone());
                    accumulate(&mut node_grads, *b, g);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut node_grads, *a, g.clone());
                    accumulate(&mut node_grads, *b, g.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let da = g.hadamard(self.value(*b)).expect("mul da");
                    let db = g.hadamard(self.value(*a)).expect("mul db");
                    accumulate(&mut node_grads, *a, da);
                    accumulate(&mut node_grads, *b, db);
                }
                Op::Scale(a, alpha) => accumulate(&mut node_grads, *a, g.scale(*alpha)),
                Op::AddScalar(a) => accumulate(&mut node_grads, *a, g),
                Op::MatMul(a, b) => {
                    // dA = g B^T ; dB = A^T g
                    let da = self
                        .device
                        .matmul_nt(&g, self.value(*b))
                        .expect("matmul dA");
                    let db = self
                        .device
                        .matmul_tn(self.value(*a), &g)
                        .expect("matmul dB");
                    accumulate(&mut node_grads, *a, da);
                    accumulate(&mut node_grads, *b, db);
                }
                Op::MatMulNT(a, b) => {
                    // y = A B^T : dA = g B ; dB = g^T A
                    let da = self
                        .device
                        .matmul(&g, self.value(*b))
                        .expect("matmul_nt dA");
                    let db = self
                        .device
                        .matmul_tn(&g, self.value(*a))
                        .expect("matmul_nt dB");
                    accumulate(&mut node_grads, *a, da);
                    accumulate(&mut node_grads, *b, db);
                }
                Op::MatMulTN(a, b) => {
                    // y = A^T B : dA = B g^T ; dB = A g
                    let da = self
                        .device
                        .matmul_nt(self.value(*b), &g)
                        .expect("matmul_tn dA");
                    let db = self
                        .device
                        .matmul(self.value(*a), &g)
                        .expect("matmul_tn dB");
                    accumulate(&mut node_grads, *a, da);
                    accumulate(&mut node_grads, *b, db);
                }
                Op::Sigmoid(a) => {
                    let y = &node.value;
                    let mut d = g;
                    for (dv, &yv) in d.as_mut_slice().iter_mut().zip(y.as_slice()) {
                        *dv *= yv * (1.0 - yv);
                    }
                    accumulate(&mut node_grads, *a, d);
                }
                Op::Tanh(a) => {
                    let y = &node.value;
                    let mut d = g;
                    for (dv, &yv) in d.as_mut_slice().iter_mut().zip(y.as_slice()) {
                        *dv *= 1.0 - yv * yv;
                    }
                    accumulate(&mut node_grads, *a, d);
                }
                Op::Relu(a) => {
                    let y = &node.value;
                    let mut d = g;
                    for (dv, &yv) in d.as_mut_slice().iter_mut().zip(y.as_slice()) {
                        if yv <= 0.0 {
                            *dv = 0.0;
                        }
                    }
                    accumulate(&mut node_grads, *a, d);
                }
                Op::SoftmaxRows(a) => {
                    // dx = y * (g - sum(g * y)) row-wise
                    let y = &node.value;
                    let mut d = g;
                    for r in 0..d.rows() {
                        let yr = y.row(r);
                        let dr = d.row_mut(r);
                        let s: f32 = dr.iter().zip(yr).map(|(&gv, &yv)| gv * yv).sum();
                        for (dv, &yv) in dr.iter_mut().zip(yr) {
                            *dv = yv * (*dv - s);
                        }
                    }
                    accumulate(&mut node_grads, *a, d);
                }
                Op::LogSoftmaxRows(a) => {
                    // y = x - logsumexp(x): dx = g - softmax(x) * rowsum(g)
                    let y = &node.value; // log-probs; softmax = exp(y)
                    let mut d = g;
                    for r in 0..d.rows() {
                        let yr = y.row(r);
                        let dr = d.row_mut(r);
                        let gsum: f32 = dr.iter().sum();
                        for (dv, &yv) in dr.iter_mut().zip(yr) {
                            *dv -= yv.exp() * gsum;
                        }
                    }
                    accumulate(&mut node_grads, *a, d);
                }
                Op::NormalizeRows(a) => {
                    // y = x/||x||: dx = (g - y (g . y)) / ||x||; zero rows pass zero.
                    let x = self.value(*a);
                    let y = &node.value;
                    let mut d = g;
                    for r in 0..d.rows() {
                        let n = x.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
                        let dr = d.row_mut(r);
                        if n == 0.0 {
                            for dv in dr.iter_mut() {
                                *dv = 0.0;
                            }
                            continue;
                        }
                        let yr = y.row(r);
                        let gy: f32 = dr.iter().zip(yr).map(|(&gv, &yv)| gv * yv).sum();
                        for (dv, &yv) in dr.iter_mut().zip(yr) {
                            *dv = (*dv - yv * gy) / n;
                        }
                    }
                    accumulate(&mut node_grads, *a, d);
                }
                Op::AddRowBroadcast(x, row) => {
                    accumulate(&mut node_grads, *row, g.sum_rows());
                    accumulate(&mut node_grads, *x, g);
                }
                Op::MulRowBroadcast(x, row) => {
                    let xv = self.value(*x);
                    let rv = self.value(*row);
                    // d_row = sum over rows of g * x
                    let mut drow = Matrix::zeros(1, rv.cols());
                    for r in 0..g.rows() {
                        for ((o, &gv), &xv2) in
                            drow.as_mut_slice().iter_mut().zip(g.row(r)).zip(xv.row(r))
                        {
                            *o += gv * xv2;
                        }
                    }
                    accumulate(&mut node_grads, *row, drow);
                    // d_x = g * row broadcast
                    let mut dx = g;
                    for r in 0..dx.rows() {
                        for (dv, &m) in dx.row_mut(r).iter_mut().zip(rv.as_slice()) {
                            *dv *= m;
                        }
                    }
                    accumulate(&mut node_grads, *x, dx);
                }
                Op::ConcatCols(xs) => {
                    let mut start = 0;
                    for &x in xs {
                        let w = self.value(x).cols();
                        let mut dx = Matrix::zeros(g.rows(), w);
                        for r in 0..g.rows() {
                            dx.row_mut(r).copy_from_slice(&g.row(r)[start..start + w]);
                        }
                        accumulate(&mut node_grads, x, dx);
                        start += w;
                    }
                }
                Op::ConcatRows(xs) => {
                    let mut start = 0;
                    for &x in xs {
                        let h = self.value(x).rows();
                        let mut dx = Matrix::zeros(h, g.cols());
                        for r in 0..h {
                            dx.row_mut(r).copy_from_slice(g.row(start + r));
                        }
                        accumulate(&mut node_grads, x, dx);
                        start += h;
                    }
                }
                Op::SliceCols { x, start, len } => {
                    let xv = self.value(*x);
                    let mut dx = Matrix::zeros(xv.rows(), xv.cols());
                    for r in 0..g.rows() {
                        dx.row_mut(r)[*start..start + len].copy_from_slice(g.row(r));
                    }
                    accumulate(&mut node_grads, *x, dx);
                }
                Op::SliceRows { x, start, len } => {
                    let xv = self.value(*x);
                    let mut dx = Matrix::zeros(xv.rows(), xv.cols());
                    for r in 0..*len {
                        dx.row_mut(start + r).copy_from_slice(g.row(r));
                    }
                    accumulate(&mut node_grads, *x, dx);
                }
                Op::LayerNormRows { x, eps } => {
                    // y = (x - mu) * inv_std ; dx = inv_std * (g - mean(g) - y * mean(g*y))
                    let xv = self.value(*x);
                    let y = &node.value;
                    let mut d = g;
                    for r in 0..d.rows() {
                        let n = xv.cols() as f32;
                        let xr = xv.row(r);
                        let mean = xr.iter().sum::<f32>() / n;
                        let var = xr.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
                        let inv_std = 1.0 / (var + eps).sqrt();
                        let yr = y.row(r);
                        let dr = d.row_mut(r);
                        let g_mean: f32 = dr.iter().sum::<f32>() / n;
                        let gy_mean: f32 =
                            dr.iter().zip(yr).map(|(&gv, &yv)| gv * yv).sum::<f32>() / n;
                        for (dv, &yv) in dr.iter_mut().zip(yr) {
                            *dv = inv_std * (*dv - g_mean - yv * gy_mean);
                        }
                    }
                    accumulate(&mut node_grads, *x, d);
                }
                Op::CrossEntropyLogits { x, targets } => {
                    // d_logits = (softmax(x) - onehot) / batch * upstream
                    let upstream = g.as_slice()[0];
                    let xv = self.value(*x);
                    let mut dx = xv.clone();
                    let batch = targets.len() as f32;
                    for (r, &t) in targets.iter().enumerate() {
                        let row = dx.row_mut(r);
                        softmax_inplace(row);
                        row[t as usize] -= 1.0;
                        for v in row.iter_mut() {
                            *v *= upstream / batch;
                        }
                    }
                    accumulate(&mut node_grads, *x, dx);
                }
                Op::MeanAll(a) => {
                    let av = self.value(*a);
                    let scale = g.as_slice()[0] / av.len() as f32;
                    accumulate(
                        &mut node_grads,
                        *a,
                        Matrix::full(av.rows(), av.cols(), scale),
                    );
                }
                Op::SumAll(a) => {
                    let av = self.value(*a);
                    let scale = g.as_slice()[0];
                    accumulate(
                        &mut node_grads,
                        *a,
                        Matrix::full(av.rows(), av.cols(), scale),
                    );
                }
                Op::Dropout { x, mask } => {
                    let dx = g.hadamard(mask).expect("dropout backward");
                    accumulate(&mut node_grads, *x, dx);
                }
            }
        }
        param_grads
    }
}

fn accumulate(grads: &mut [Option<Matrix>], var: Var, delta: Matrix) {
    match &mut grads[var.index()] {
        Some(g) => g.add_assign(&delta).expect("node gradient shape mismatch"),
        slot @ None => *slot = Some(delta),
    }
}

fn op_name(op: &Op) -> &'static str {
    match op {
        Op::Constant => "Constant",
        Op::ParamRead(_) => "ParamRead",
        Op::Gather { .. } => "Gather",
        Op::Linear { .. } => "Linear",
        Op::Add(..) => "Add",
        Op::Sub(..) => "Sub",
        Op::Mul(..) => "Mul",
        Op::Scale(..) => "Scale",
        Op::AddScalar(_) => "AddScalar",
        Op::MatMul(..) => "MatMul",
        Op::MatMulNT(..) => "MatMulNT",
        Op::MatMulTN(..) => "MatMulTN",
        Op::Sigmoid(_) => "Sigmoid",
        Op::Tanh(_) => "Tanh",
        Op::Relu(_) => "Relu",
        Op::SoftmaxRows(_) => "SoftmaxRows",
        Op::LogSoftmaxRows(_) => "LogSoftmaxRows",
        Op::NormalizeRows(_) => "NormalizeRows",
        Op::AddRowBroadcast(..) => "AddRowBroadcast",
        Op::MulRowBroadcast(..) => "MulRowBroadcast",
        Op::ConcatCols(_) => "ConcatCols",
        Op::ConcatRows(_) => "ConcatRows",
        Op::SliceCols { .. } => "SliceCols",
        Op::SliceRows { .. } => "SliceRows",
        Op::LayerNormRows { .. } => "LayerNormRows",
        Op::CrossEntropyLogits { .. } => "CrossEntropyLogits",
        Op::MeanAll(_) => "MeanAll",
        Op::SumAll(_) => "SumAll",
        Op::Dropout { .. } => "Dropout",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(values: &[(&str, Matrix)]) -> (ParamStore, Vec<ParamId>) {
        let mut s = ParamStore::new();
        let ids = values
            .iter()
            .map(|(n, v)| s.register(*n, v.clone()))
            .collect();
        (s, ids)
    }

    #[test]
    fn forward_values_linear() {
        let (store, ids) = store_with(&[
            ("w", Matrix::from_vec(2, 2, vec![1., 2., 3., 4.])),
            ("b", Matrix::from_vec(1, 2, vec![10., 20.])),
        ]);
        let mut g = Graph::new(&store);
        let x = g.constant(Matrix::from_vec(1, 2, vec![1., 1.]));
        let y = g.linear(ids[0], Some(ids[1]), x);
        assert_eq!(g.value(y).as_slice(), &[14., 26.]);
    }

    #[test]
    fn backward_linear_matches_hand_derivation() {
        // loss = mean(x W + b) with x = [1, 2], W = [[1,2],[3,4]], b = [0,0]
        // y = [7, 10]; loss = 8.5
        // dL/dW = x^T * [0.5, 0.5] ; dL/db = [0.5, 0.5] ; dL/dx = [1.5, 3.5]
        let (store, ids) = store_with(&[
            ("w", Matrix::from_vec(2, 2, vec![1., 2., 3., 4.])),
            ("b", Matrix::zeros(1, 2)),
        ]);
        let mut g = Graph::new(&store);
        let x = g.constant(Matrix::from_vec(1, 2, vec![1., 2.]));
        let y = g.linear(ids[0], Some(ids[1]), x);
        let loss = g.mean_all(y);
        assert!((g.scalar(loss) - 8.5).abs() < 1e-6);
        let grads = g.backward(loss);
        assert_eq!(grads.get(ids[0]).unwrap().as_slice(), &[0.5, 0.5, 1.0, 1.0]);
        assert_eq!(grads.get(ids[1]).unwrap().as_slice(), &[0.5, 0.5]);
    }

    #[test]
    fn gather_scatters_gradients_to_rows() {
        let (store, ids) =
            store_with(&[("emb", Matrix::from_vec(3, 2, vec![1., 1., 2., 2., 3., 3.]))]);
        let mut g = Graph::new(&store);
        let e = g.gather(ids[0], &[2, 0, 2]);
        assert_eq!(g.value(e).row(0), &[3., 3.]);
        let loss = g.sum_all(e);
        let grads = g.backward(loss);
        let ge = grads.get(ids[0]).unwrap();
        assert_eq!(ge.row(0), &[1., 1.]);
        assert_eq!(ge.row(1), &[0., 0.]);
        assert_eq!(ge.row(2), &[2., 2.]); // gathered twice
    }

    #[test]
    fn cross_entropy_value_and_gradient() {
        let (store, ids) = store_with(&[("w", Matrix::identity(3))]);
        let mut g = Graph::new(&store);
        let x = g.constant(Matrix::from_vec(1, 3, vec![1., 0., 0.]));
        let logits = g.linear(ids[0], None, x);
        let loss = g.cross_entropy_logits(logits, &[0]);
        // -log softmax(1,0,0)[0] = log(e + 2) - 1
        let expected = ((std::f32::consts::E + 2.0).ln()) - 1.0;
        assert!((g.scalar(loss) - expected).abs() < 1e-5);
        let grads = g.backward(loss);
        let gw = grads.get(ids[0]).unwrap();
        // d_logits = softmax - onehot; dW = x^T d_logits -> first row only.
        let sm0 = std::f32::consts::E / (std::f32::consts::E + 2.0);
        assert!((gw.get(0, 0) - (sm0 - 1.0)).abs() < 1e-5);
        assert_eq!(gw.row(1), &[0., 0., 0.]);
    }

    #[test]
    fn chained_ops_compute_products_of_jacobians() {
        // loss = sum(tanh(x) * sigmoid(x)) at x = 0 -> 0; d/dx = tanh'(0)*sig(0) = 0.5
        let (store, _) = store_with(&[]);
        let mut g = Graph::new(&store);
        let x = g.constant(Matrix::zeros(1, 1));
        let t = g.tanh(x);
        let s = g.sigmoid(x);
        let m = g.mul(t, s);
        let loss = g.sum_all(m);
        assert_eq!(g.scalar(loss), 0.0);
        // x is a constant so no param grads, but the pass must not panic and
        // internal node grads must flow through both branches.
        let grads = g.backward(loss);
        assert_eq!(grads.num_present(), 0);
    }

    #[test]
    fn softmax_rows_backward_is_zero_for_uniform_upstream() {
        // For softmax, J^T 1 = 0: a constant upstream gradient yields zero.
        let (store, ids) = store_with(&[("w", Matrix::identity(3))]);
        let mut g = Graph::new(&store);
        let x = g.constant(Matrix::from_vec(1, 3, vec![0.3, -0.2, 0.9]));
        let h = g.linear(ids[0], None, x);
        let s = g.softmax_rows(h);
        let loss = g.sum_all(s); // = 1 always
        assert!((g.scalar(loss) - 1.0).abs() < 1e-6);
        let grads = g.backward(loss);
        let gw = grads.get(ids[0]).unwrap();
        assert!(gw.as_slice().iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn concat_and_slice_round_trip_gradients() {
        let (store, ids) = store_with(&[("p", Matrix::from_vec(1, 2, vec![1., 2.]))]);
        let mut g = Graph::new(&store);
        let p = g.param(ids[0]);
        let c = g.constant(Matrix::from_vec(1, 3, vec![0., 0., 0.]));
        let cat = g.concat_cols(&[p, c]);
        assert_eq!(g.value(cat).shape(), (1, 5));
        // Take back just the param slice and sum: gradient of p must be ones.
        let back = g.slice_cols(cat, 0, 2);
        let loss = g.sum_all(back);
        let grads = g.backward(loss);
        assert_eq!(grads.get(ids[0]).unwrap().as_slice(), &[1., 1.]);
    }

    #[test]
    fn concat_rows_stacks_and_routes_gradients() {
        let (store, ids) = store_with(&[
            ("a", Matrix::from_vec(1, 2, vec![1., 2.])),
            ("b", Matrix::from_vec(2, 2, vec![3., 4., 5., 6.])),
        ]);
        let mut g = Graph::new(&store);
        let a = g.param(ids[0]);
        let b = g.param(ids[1]);
        let s = g.concat_rows(&[a, b]);
        assert_eq!(g.value(s).shape(), (3, 2));
        let second = g.row(s, 1); // first row of b
        let loss = g.sum_all(second);
        let grads = g.backward(loss);
        // `a`'s rows were not selected, so its gradient is identically zero
        // (it still flows through the concat node as an explicit zero block).
        let ga = grads.get(ids[0]).unwrap();
        assert!(ga.as_slice().iter().all(|&v| v == 0.0));
        let gb = grads.get(ids[1]).unwrap();
        assert_eq!(gb.row(0), &[1., 1.]);
        assert_eq!(gb.row(1), &[0., 0.]);
    }

    #[test]
    fn normalize_rows_produces_unit_rows_and_keeps_zero_rows() {
        let (store, _) = store_with(&[]);
        let mut g = Graph::new(&store);
        let x = g.constant(Matrix::from_vec(2, 2, vec![3., 4., 0., 0.]));
        let n = g.normalize_rows(x);
        assert_eq!(g.value(n).row(0), &[0.6, 0.8]);
        assert_eq!(g.value(n).row(1), &[0., 0.]);
    }

    #[test]
    fn layer_norm_rows_zero_mean_unit_var() {
        let (store, _) = store_with(&[]);
        let mut g = Graph::new(&store);
        let x = g.constant(Matrix::from_vec(1, 4, vec![1., 2., 3., 4.]));
        let y = g.layer_norm_rows(x, 1e-5);
        let row = g.value(y).row(0).to_vec();
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn dropout_applies_mask_forward_and_backward() {
        let (store, ids) = store_with(&[("p", Matrix::from_vec(1, 4, vec![1., 1., 1., 1.]))]);
        let mut g = Graph::new(&store);
        let p = g.param(ids[0]);
        let mask = Matrix::from_vec(1, 4, vec![2., 0., 2., 0.]); // keep_prob 0.5
        let d = g.dropout(p, mask);
        assert_eq!(g.value(d).as_slice(), &[2., 0., 2., 0.]);
        let loss = g.sum_all(d);
        let grads = g.backward(loss);
        assert_eq!(grads.get(ids[0]).unwrap().as_slice(), &[2., 0., 2., 0.]);
    }

    #[test]
    #[should_panic(expected = "loss must be a 1x1 scalar")]
    fn backward_rejects_non_scalar_loss() {
        let (store, _) = store_with(&[]);
        let mut g = Graph::new(&store);
        let x = g.constant(Matrix::zeros(2, 2));
        g.backward(x);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_rejects_bad_index() {
        let (store, ids) = store_with(&[("emb", Matrix::zeros(2, 2))]);
        let mut g = Graph::new(&store);
        g.gather(ids[0], &[5]);
    }
}

#[cfg(test)]
mod log_softmax_tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use adamove_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn log_softmax_matches_manual_nll() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let x = g.constant(Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let ls = g.log_softmax_rows(x);
        let probs: f32 = g.value(ls).as_slice().iter().map(|v| v.exp()).sum();
        assert!((probs - 1.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_gradcheck() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut store = ParamStore::new();
        let w = store.register("w", init::xavier_uniform(3, 4, &mut rng));
        let x = init::normal(2, 3, 1.0, &mut rng);
        // Soft-label cross-entropy: -sum(p * log_softmax(xW)).
        let p = Matrix::from_vec(2, 4, vec![0.7, 0.1, 0.1, 0.1, 0.25, 0.25, 0.25, 0.25]);
        check_gradients(
            &mut store,
            move |g| {
                let xv = g.constant(x.clone());
                let logits = g.linear(w, None, xv);
                let ls = g.log_softmax_rows(logits);
                let pv = g.constant(p.clone());
                let weighted = g.mul(pv, ls);
                let total = g.sum_all(weighted);
                g.scale(total, -0.5)
            },
            1e-2,
            2e-2,
            2e-3,
        )
        .unwrap();
    }
}
