//! Finite-difference gradient checking.
//!
//! Every layer and loss in the NN stack is validated against central
//! differences; this module provides the shared harness. Checks perturb one
//! scalar weight at a time, rebuild the forward pass, and compare the
//! numerical slope with the analytic gradient under a mixed
//! absolute/relative tolerance (f32 forward passes make a pure relative
//! tolerance too strict near zero).
//!
//! Piecewise-linear ops need one extra rule: at a ReLU kink the central
//! difference straddles both linear pieces and averages their slopes, which
//! matches *neither* valid subgradient. When the central comparison fails,
//! the check falls back to the two one-sided differences and accepts if the
//! analytic gradient agrees with either side — so both subgradient
//! conventions at the kink (0 and 1) pass, while genuinely wrong gradients
//! still fail (they match no side).

use crate::graph::{Graph, Var};
use crate::param::{ParamId, ParamStore};

/// Outcome of a failed gradient check, with enough context to debug it.
#[derive(Debug, Clone)]
pub struct GradCheckError {
    /// Offending parameter name.
    pub param: String,
    /// Flat element index within the parameter.
    pub element: usize,
    /// Gradient from the backward pass.
    pub analytic: f32,
    /// Central finite-difference estimate.
    pub numeric: f32,
}

impl std::fmt::Display for GradCheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gradient mismatch in `{}`[{}]: analytic {} vs numeric {}",
            self.param, self.element, self.analytic, self.numeric
        )
    }
}

impl std::error::Error for GradCheckError {}

/// Check analytic gradients of `build` (which must return a `1 x 1` loss)
/// against central finite differences for every parameter in the store.
///
/// `eps` is the perturbation step (1e-2 works well for f32 forward math),
/// and the comparison passes when
/// `|analytic - numeric| <= atol + rtol * max(|analytic|, |numeric|)`.
///
/// If the central difference fails, the element is re-checked against both
/// one-sided differences and passes when the analytic gradient matches
/// either — this keeps non-differentiable points of piecewise-linear ops
/// (e.g. ReLU evaluated exactly at 0) from producing spurious failures.
pub fn check_gradients(
    store: &mut ParamStore,
    mut build: impl FnMut(&mut Graph) -> Var,
    eps: f32,
    rtol: f32,
    atol: f32,
) -> Result<(), GradCheckError> {
    // Analytic pass.
    let analytic = {
        let mut graph = Graph::new(store);
        let loss = build(&mut graph);
        graph.backward(loss)
    };

    let ids: Vec<ParamId> = store.iter().map(|(id, _)| id).collect();
    for id in ids {
        let n = store.value(id).len();
        for e in 0..n {
            let orig = store.value(id).as_slice()[e];

            store.value_mut(id).as_mut_slice()[e] = orig + eps;
            let plus = eval_loss(store, &mut build);
            store.value_mut(id).as_mut_slice()[e] = orig - eps;
            let minus = eval_loss(store, &mut build);
            store.value_mut(id).as_mut_slice()[e] = orig;

            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic.get(id).map(|g| g.as_slice()[e]).unwrap_or(0.0);
            let tol = atol + rtol * a.abs().max(numeric.abs());
            if (a - numeric).abs() > tol {
                // Possible kink between `orig - eps` and `orig + eps`: the
                // central slope averages the two linear pieces. Accept the
                // analytic gradient if it matches either one-sided slope
                // (covers both subgradient conventions at the kink).
                let base = eval_loss(store, &mut build);
                let one_sided_ok = [(plus - base) / eps, (base - minus) / eps]
                    .into_iter()
                    .any(|s| (a - s).abs() <= atol + rtol * a.abs().max(s.abs()));
                if !one_sided_ok {
                    return Err(GradCheckError {
                        param: store.param(id).name.clone(),
                        element: e,
                        analytic: a,
                        numeric,
                    });
                }
            }
        }
    }
    Ok(())
}

fn eval_loss(store: &ParamStore, build: &mut impl FnMut(&mut Graph) -> Var) -> f32 {
    let mut graph = Graph::new(store);
    let loss = build(&mut graph);
    graph.scalar(loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamove_tensor::{init, Matrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    /// Standard tolerances for f32 forward passes with eps = 1e-2.
    const EPS: f32 = 1e-2;
    const RTOL: f32 = 2e-2;
    const ATOL: f32 = 2e-3;

    #[test]
    fn linear_layer_gradcheck() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let w = store.register("w", init::xavier_uniform(3, 4, &mut rng));
        let b = store.register("b", init::uniform(1, 4, -0.1, 0.1, &mut rng));
        let x = init::normal(2, 3, 1.0, &mut rng);
        check_gradients(
            &mut store,
            |g| {
                let xv = g.constant(x.clone());
                let y = g.linear(w, Some(b), xv);
                let t = g.tanh(y);
                g.mean_all(t)
            },
            EPS,
            RTOL,
            ATOL,
        )
        .unwrap();
    }

    #[test]
    fn gather_plus_cross_entropy_gradcheck() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let emb = store.register("emb", init::normal(5, 3, 0.5, &mut rng));
        let w = store.register("w", init::xavier_uniform(3, 5, &mut rng));
        check_gradients(
            &mut store,
            |g| {
                let e = g.gather(emb, &[0, 3, 4, 3]);
                let logits = g.linear(w, None, e);
                g.cross_entropy_logits(logits, &[1, 0, 2, 4])
            },
            EPS,
            RTOL,
            ATOL,
        )
        .unwrap();
    }

    #[test]
    fn softmax_attention_shape_gradcheck() {
        // Mini attention: scores = Q K^T / sqrt(d); out = softmax(scores) V.
        let mut rng = rng();
        let mut store = ParamStore::new();
        let wq = store.register("wq", init::xavier_uniform(4, 4, &mut rng));
        let wk = store.register("wk", init::xavier_uniform(4, 4, &mut rng));
        let wv = store.register("wv", init::xavier_uniform(4, 4, &mut rng));
        let q_in = init::normal(2, 4, 1.0, &mut rng);
        let kv_in = init::normal(3, 4, 1.0, &mut rng);
        check_gradients(
            &mut store,
            |g| {
                let qi = g.constant(q_in.clone());
                let ki = g.constant(kv_in.clone());
                let q = g.linear(wq, None, qi);
                let k = g.linear(wk, None, ki);
                let v = g.linear(wv, None, ki);
                let scores = g.matmul_nt(q, k);
                let scaled = g.scale(scores, 0.5);
                let attn = g.softmax_rows(scaled);
                let out = g.matmul(attn, v);
                let t = g.tanh(out);
                g.mean_all(t)
            },
            EPS,
            RTOL,
            ATOL,
        )
        .unwrap();
    }

    #[test]
    fn normalize_rows_gradcheck() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let w = store.register("w", init::xavier_uniform(3, 3, &mut rng));
        let x = init::normal(2, 3, 1.0, &mut rng);
        check_gradients(
            &mut store,
            |g| {
                let xv = g.constant(x.clone());
                let h = g.linear(w, None, xv);
                let n = g.normalize_rows(h);
                let s = g.sum_all(n);
                // Square via mul to exercise non-linear downstream of normalize.
                let sq = g.mul(s, s);
                g.mean_all(sq)
            },
            EPS,
            RTOL,
            ATOL,
        )
        .unwrap();
    }

    #[test]
    fn layer_norm_gradcheck() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let w = store.register("w", init::xavier_uniform(4, 4, &mut rng));
        let gain = store.register("gain", init::uniform(1, 4, 0.8, 1.2, &mut rng));
        let bias = store.register("bias", init::uniform(1, 4, -0.1, 0.1, &mut rng));
        let x = init::normal(3, 4, 1.0, &mut rng);
        check_gradients(
            &mut store,
            |g| {
                let xv = g.constant(x.clone());
                let h = g.linear(w, None, xv);
                let n = g.layer_norm_rows(h, 1e-5);
                let gv = g.param(gain);
                let bv = g.param(bias);
                let scaled = g.mul_row_broadcast(n, gv);
                let shifted = g.add_row_broadcast(scaled, bv);
                let t = g.tanh(shifted);
                g.mean_all(t)
            },
            EPS,
            RTOL,
            ATOL,
        )
        .unwrap();
    }

    #[test]
    fn recurrent_chain_gradcheck() {
        // Three steps of h' = tanh(x W + h U): checks repeated-use gradients.
        let mut rng = rng();
        let mut store = ParamStore::new();
        let w = store.register("w", init::xavier_uniform(2, 3, &mut rng));
        let u = store.register("u", init::recurrent(3, 3, &mut rng));
        let xs: Vec<Matrix> = (0..3).map(|_| init::normal(1, 2, 1.0, &mut rng)).collect();
        check_gradients(
            &mut store,
            |g| {
                let mut h = g.constant(Matrix::zeros(1, 3));
                for x in &xs {
                    let xv = g.constant(x.clone());
                    let a = g.linear(w, None, xv);
                    let b = g.linear(u, None, h);
                    let s = g.add(a, b);
                    h = g.tanh(s);
                }
                g.mean_all(h)
            },
            EPS,
            RTOL,
            ATOL,
        )
        .unwrap();
    }

    #[test]
    fn info_nce_shape_gradcheck() {
        // InfoNCE = cross-entropy over cosine similarities with target 0.
        let mut rng = rng();
        let mut store = ParamStore::new();
        let w = store.register("w", init::xavier_uniform(3, 4, &mut rng));
        let anchor_in = init::normal(1, 3, 1.0, &mut rng);
        let others_in = init::normal(4, 3, 1.0, &mut rng);
        check_gradients(
            &mut store,
            |g| {
                let a_in = g.constant(anchor_in.clone());
                let o_in = g.constant(others_in.clone());
                let a = g.linear(w, None, a_in);
                let o = g.linear(w, None, o_in);
                let an = g.normalize_rows(a);
                let on = g.normalize_rows(o);
                let sims = g.matmul_nt(an, on); // 1 x 4
                g.cross_entropy_logits(sims, &[0])
            },
            EPS,
            RTOL,
            ATOL,
        )
        .unwrap();
    }

    #[test]
    fn relu_exactly_at_kink_passes() {
        // w = 0 puts ReLU's input exactly on its non-differentiable point,
        // so the central difference straddles the kink and disagrees with
        // every valid subgradient. The one-sided fallback must accept it.
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_vec(1, 2, vec![0.0, 0.0]));
        let x = Matrix::from_vec(1, 2, vec![-0.75, 1.25]);
        check_gradients(
            &mut store,
            move |g| {
                let wv = g.param(w);
                let xv = g.constant(x.clone());
                let m = g.mul(wv, xv);
                let r = g.relu(m);
                g.mean_all(r)
            },
            EPS,
            RTOL,
            ATOL,
        )
        .unwrap();
    }

    #[test]
    fn detects_wrong_gradient() {
        // A parameter used in a non-differentiable-by-our-op way would fail;
        // simulate by checking against a deliberately perturbed analytic
        // gradient: perturb the build between analytic and numeric passes.
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_vec(1, 1, vec![1.0]));
        let mut flip = true;
        let res = check_gradients(
            &mut store,
            move |g| {
                // Alternate between two different functions so the numeric
                // slope disagrees with the analytic gradient.
                let p = g.param(w);
                let out = if flip { g.mul(p, p) } else { p };
                flip = !flip;
                g.mean_all(out)
            },
            1e-2,
            1e-3,
            1e-4,
        );
        assert!(res.is_err());
        let err = res.unwrap_err();
        assert_eq!(err.param, "w");
        assert!(err.to_string().contains("gradient mismatch"));
    }
}
