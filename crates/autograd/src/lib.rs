#![warn(missing_docs)]
//! Arena-based reverse-mode automatic differentiation.
//!
//! This crate is the training substrate for the AdaMove reproduction: a
//! minimal tape autodiff over [`adamove_tensor::Matrix`] values, sized for
//! the ops the paper's models need (embedding gather, affine layers,
//! recurrent-cell arithmetic, scaled dot-product attention, layer norm,
//! softmax/cross-entropy, L2-normalised similarity for InfoNCE).
//!
//! # Design
//!
//! - Parameters live outside the tape in a [`ParamStore`] and are referenced
//!   by [`ParamId`]. Fused ops ([`Graph::gather`], [`Graph::linear`]) read the
//!   parameter value in the forward pass and scatter gradients back to it in
//!   the backward pass — so a `5000 x 48` embedding table or a `64 x 5000`
//!   output layer is never copied onto the tape.
//! - Each forward pass builds a fresh [`Graph`] (arena `Vec<Node>`); node
//!   operands are [`Var`] indices, ops are an enum rather than boxed
//!   closures, per the perf-book guidance on hot-loop allocation.
//! - [`Graph::backward`] returns a [`Gradients`] map the caller hands to an
//!   optimiser; a batch accumulates gradients simply by building one graph
//!   over all of its samples and averaging the losses.
//!
//! Gradient correctness is enforced by finite-difference checks in
//! [`gradcheck`], used extensively by this crate's tests and downstream.

pub mod gradcheck;
pub mod graph;
pub mod param;

pub use graph::{Graph, Var};
pub use param::{Gradients, Param, ParamId, ParamStore};
