//! Property-based gradient checks: random small graphs over random
//! parameter values must match central finite differences.

use adamove_autograd::gradcheck::check_gradients;
use adamove_autograd::{Graph, ParamStore, Var};
use adamove_tensor::Matrix;
use proptest::prelude::*;

const EPS: f32 = 1e-2;
const RTOL: f32 = 4e-2;
const ATOL: f32 = 4e-3;

/// Random values bounded away from zero: ReLU is non-differentiable at 0
/// and finite differences straddle the kink, so |v| >= 0.1 keeps every
/// sampled point (and products of them with the fixed inputs) away from it
/// at eps = 1e-2.
fn values(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec((0.1f32..1.5, prop::bool::ANY), n).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(v, neg)| if neg { -v } else { v })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn elementwise_chain_gradcheck(
        w in values(6),
        x in values(6),
        which in 0u8..4,
    ) {
        let mut store = ParamStore::new();
        let wid = store.register("w", Matrix::from_vec(2, 3, w));
        let x_mat = Matrix::from_vec(2, 3, x);
        check_gradients(
            &mut store,
            move |g: &mut Graph| -> Var {
                let wv = g.param(wid);
                let xv = g.constant(x_mat.clone());
                let m = g.mul(wv, xv);
                let act = match which {
                    0 => g.tanh(m),
                    1 => g.sigmoid(m),
                    2 => g.relu(m),
                    _ => {
                        let s = g.scale(m, 0.5);
                        g.add_scalar(s, 0.1)
                    }
                };
                g.mean_all(act)
            },
            EPS, RTOL, ATOL,
        ).unwrap();
    }

    #[test]
    fn matmul_chain_gradcheck(a in values(6), b in values(6)) {
        let mut store = ParamStore::new();
        let aid = store.register("a", Matrix::from_vec(2, 3, a));
        let bid = store.register("b", Matrix::from_vec(3, 2, b));
        check_gradients(
            &mut store,
            move |g: &mut Graph| -> Var {
                let av = g.param(aid);
                let bv = g.param(bid);
                let m = g.matmul(av, bv);
                let t = g.tanh(m);
                g.sum_all(t)
            },
            EPS, RTOL, ATOL,
        ).unwrap();
    }

    #[test]
    fn softmax_cross_entropy_gradcheck(
        w in values(9),
        target in 0u32..3,
    ) {
        let mut store = ParamStore::new();
        let wid = store.register("w", Matrix::from_vec(3, 3, w));
        check_gradients(
            &mut store,
            move |g: &mut Graph| -> Var {
                let x = g.constant(Matrix::from_vec(1, 3, vec![0.5, -0.5, 1.0]));
                let logits = g.linear(wid, None, x);
                g.cross_entropy_logits(logits, &[target])
            },
            EPS, RTOL, ATOL,
        ).unwrap();
    }

    #[test]
    fn shared_parameter_gradcheck(w in values(4)) {
        // A parameter used twice must accumulate both contributions.
        let mut store = ParamStore::new();
        let wid = store.register("w", Matrix::from_vec(2, 2, w));
        check_gradients(
            &mut store,
            move |g: &mut Graph| -> Var {
                let wv = g.param(wid);
                let sq = g.matmul(wv, wv); // W @ W: both uses differentiate
                let t = g.tanh(sq);
                g.mean_all(t)
            },
            EPS, RTOL, ATOL,
        ).unwrap();
    }

    #[test]
    fn slice_concat_gradcheck(w in values(8)) {
        let mut store = ParamStore::new();
        let wid = store.register("w", Matrix::from_vec(2, 4, w));
        check_gradients(
            &mut store,
            move |g: &mut Graph| -> Var {
                let wv = g.param(wid);
                let left = g.slice_cols(wv, 0, 2);
                let right = g.slice_cols(wv, 2, 2);
                let swapped = g.concat_cols(&[right, left]);
                let rows = g.slice_rows(swapped, 1, 1);
                let t = g.sigmoid(rows);
                g.sum_all(t)
            },
            EPS, RTOL, ATOL,
        ).unwrap();
    }

    #[test]
    fn normalize_then_similarity_gradcheck(w in values(6)) {
        // The InfoNCE building block: normalised dot products.
        let mut store = ParamStore::new();
        let wid = store.register("w", Matrix::from_vec(2, 3, w));
        check_gradients(
            &mut store,
            move |g: &mut Graph| -> Var {
                let wv = g.param(wid);
                let n = g.normalize_rows(wv);
                let sims = g.matmul_nt(n, n);
                let t = g.tanh(sims);
                g.mean_all(t)
            },
            EPS, RTOL, 6e-3,
        ).unwrap();
    }
}

/// Regression for the checked-in proptest shrink of
/// `elementwise_chain_gradcheck`: `w = [0; 6]`, `x = [0, 0, 0, 0, 0,
/// -0.64169353]`, `which = 2` (ReLU). Every product w*x sits exactly on the
/// ReLU kink, where the central difference matches neither subgradient; the
/// one-sided fallback in `check_gradients` must accept the analytic answer.
#[test]
fn relu_kink_regression_from_proptest_shrink() {
    let w = vec![0.0f32; 6];
    let x = vec![0.0, 0.0, 0.0, 0.0, 0.0, -0.641_693_53];
    let mut store = ParamStore::new();
    let wid = store.register("w", Matrix::from_vec(2, 3, w));
    let x_mat = Matrix::from_vec(2, 3, x);
    check_gradients(
        &mut store,
        move |g: &mut Graph| -> Var {
            let wv = g.param(wid);
            let xv = g.constant(x_mat.clone());
            let m = g.mul(wv, xv);
            let act = g.relu(m);
            g.mean_all(act)
        },
        EPS,
        RTOL,
        ATOL,
    )
    .unwrap();
}

#[test]
fn gradients_accumulate_linearly_over_batches() {
    // backward(loss_a + loss_b) == backward(loss_a) + backward(loss_b).
    let mut store = ParamStore::new();
    let w = store.register("w", Matrix::from_vec(1, 3, vec![0.3, -0.2, 0.7]));
    let xa = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
    let xb = Matrix::from_vec(1, 3, vec![-1.0, 0.5, 0.2]);

    let combined = {
        let mut g = Graph::new(&store);
        let wv = g.param(w);
        let a = g.constant(xa.clone());
        let b = g.constant(xb.clone());
        let la_m = g.mul(wv, a);
        let lb_m = g.mul(wv, b);
        let la = g.sum_all(la_m);
        let lb = g.sum_all(lb_m);
        let total = g.add(la, lb);
        g.backward(total)
    };
    let separate = {
        let mut g1 = Graph::new(&store);
        let wv = g1.param(w);
        let a = g1.constant(xa);
        let m = g1.mul(wv, a);
        let la = g1.sum_all(m);
        let mut ga = g1.backward(la);

        let mut g2 = Graph::new(&store);
        let wv2 = g2.param(w);
        let b = g2.constant(xb);
        let m2 = g2.mul(wv2, b);
        let lb = g2.sum_all(m2);
        let gb = g2.backward(lb);
        ga.merge(&gb);
        ga
    };
    let c = combined.get(w).unwrap();
    let s = separate.get(w).unwrap();
    for (a, b) in c.as_slice().iter().zip(s.as_slice()) {
        assert!((a - b).abs() < 1e-6);
    }
}
