//! Integration tests of the optimiser + layers + losses as a system:
//! small learning problems with known solutions must be solved.

use adamove_autograd::{Graph, ParamStore};
use adamove_nn::{info_nce, Adam, Embedding, Linear, LstmCell, Optimizer, Recurrent};
use adamove_tensor::{init, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Accuracy of a 2-layer MLP on a linearly separable 2-class task.
#[test]
fn mlp_solves_separable_classification() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut store = ParamStore::new();
    let l1 = Linear::new(&mut store, "l1", 2, 8, true, &mut rng);
    let l2 = Linear::new(&mut store, "l2", 8, 2, true, &mut rng);

    // Classes separated by the line y = x.
    let make_batch = |rng: &mut StdRng| {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..32 {
            let a: f32 = rng.gen_range(-1.0..1.0);
            let b: f32 = rng.gen_range(-1.0..1.0);
            xs.push([a, b]);
            ys.push(u32::from(a > b));
        }
        (xs, ys)
    };

    let mut adam = Adam::new();
    for _ in 0..150 {
        let (xs, ys) = make_batch(&mut rng);
        let grads = {
            let mut g = Graph::new(&store);
            let x = g.constant(Matrix::from_vec(
                32,
                2,
                xs.iter().flatten().copied().collect(),
            ));
            let h = l1.forward(&mut g, x);
            let t = g.tanh(h);
            let logits = l2.forward(&mut g, t);
            let loss = g.cross_entropy_logits(logits, &ys);
            g.backward(loss)
        };
        adam.step(&mut store, &grads, 0.01);
    }

    // Evaluate.
    let (xs, ys) = make_batch(&mut rng);
    let mut correct = 0;
    let mut g = Graph::new(&store);
    let x = g.constant(Matrix::from_vec(
        32,
        2,
        xs.iter().flatten().copied().collect(),
    ));
    let h = l1.forward(&mut g, x);
    let t = g.tanh(h);
    let logits = l2.forward(&mut g, t);
    for (r, &y) in ys.iter().enumerate() {
        if adamove_tensor::matrix::argmax(g.value(logits).row(r)) == y as usize {
            correct += 1;
        }
    }
    assert!(correct >= 29, "only {correct}/32 correct");
}

/// An LSTM must learn to remember the FIRST token of a sequence — a task
/// impossible without functioning memory gates.
#[test]
fn lstm_learns_to_remember_first_token() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut store = ParamStore::new();
    let emb = Embedding::new(&mut store, "emb", 4, 8, &mut rng);
    let enc = Recurrent::Lstm(LstmCell::new(&mut store, "lstm", 8, 16, &mut rng));
    let head = Linear::new(&mut store, "head", 16, 4, true, &mut rng);

    let mut adam = Adam::new();
    for step in 0..900 {
        let first: u32 = rng.gen_range(0..4);
        let mut seq = vec![first];
        for _ in 0..3 {
            seq.push(rng.gen_range(0..4));
        }
        let grads = {
            let mut g = Graph::new(&store);
            let e = emb.forward(&mut g, &seq);
            let h = enc.encode_last(&mut g, e);
            let logits = head.forward(&mut g, h);
            let loss = g.cross_entropy_logits(logits, &[first]);
            g.backward(loss)
        };
        adam.step(&mut store, &grads, if step < 600 { 0.01 } else { 0.003 });
    }

    let mut correct = 0;
    for _ in 0..40 {
        let first: u32 = rng.gen_range(0..4);
        let mut seq = vec![first];
        for _ in 0..3 {
            seq.push(rng.gen_range(0..4));
        }
        let mut g = Graph::new(&store);
        let e = emb.forward(&mut g, &seq);
        let h = enc.encode_last(&mut g, e);
        let logits = head.forward(&mut g, h);
        if adamove_tensor::matrix::argmax(g.value(logits).row(0)) == first as usize {
            correct += 1;
        }
    }
    assert!(correct >= 34, "LSTM failed memory task: {correct}/40");
}

/// InfoNCE training must pull positive pairs together in cosine space.
#[test]
fn info_nce_aligns_positive_pairs() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ParamStore::new();
    // Two encoders of a shared latent: anchor = A z, positive = B z.
    let enc_a = Linear::new(&mut store, "a", 4, 6, false, &mut rng);
    let enc_b = Linear::new(&mut store, "b", 4, 6, false, &mut rng);

    let latents: Vec<Matrix> = (0..8).map(|_| init::normal(1, 4, 1.0, &mut rng)).collect();

    let alignment = |store: &ParamStore| -> f32 {
        let mut total = 0.0;
        for z in &latents {
            let mut g = Graph::new(store);
            let zv = g.constant(z.clone());
            let a = enc_a.forward(&mut g, zv);
            let b = enc_b.forward(&mut g, zv);
            total += adamove_tensor::stats::cosine_similarity(g.value(a).row(0), g.value(b).row(0));
        }
        total / latents.len() as f32
    };

    let before = alignment(&store);
    let mut adam = Adam::new();
    for _ in 0..200 {
        let i = rng.gen_range(0..latents.len());
        let grads = {
            let mut g = Graph::new(&store);
            let anchor_in = g.constant(latents[i].clone());
            let anchor = enc_a.forward(&mut g, anchor_in);
            let pos_in = g.constant(latents[i].clone());
            let positive = enc_b.forward(&mut g, pos_in);
            // Negatives: the other latents through encoder B.
            let neg_rows: Vec<_> = (0..latents.len())
                .filter(|&j| j != i)
                .map(|j| {
                    let n_in = g.constant(latents[j].clone());
                    enc_b.forward(&mut g, n_in)
                })
                .collect();
            let negs = g.concat_rows(&neg_rows);
            let loss = info_nce(&mut g, anchor, positive, Some(negs));
            g.backward(loss)
        };
        adam.step(&mut store, &grads, 0.01);
    }
    let after = alignment(&store);
    assert!(
        after > before + 0.1,
        "alignment did not improve: {before} -> {after}"
    );
    assert!(after > 0.8, "final alignment too weak: {after}");
}

/// Gradient clipping must keep training stable with an absurd LR spike.
#[test]
fn clipping_prevents_divergence() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut store = ParamStore::new();
    let l = Linear::new(&mut store, "l", 3, 3, true, &mut rng);
    let mut adam = Adam::new();
    for _ in 0..50 {
        let grads = {
            let mut g = Graph::new(&store);
            let x = g.constant(init::normal(8, 3, 10.0, &mut rng)); // huge inputs
            let logits = l.forward(&mut g, x);
            let loss = g.cross_entropy_logits(logits, &[0, 1, 2, 0, 1, 2, 0, 1]);
            g.backward(loss)
        };
        let mut grads = grads;
        grads.clip_global_norm(1.0);
        assert!(grads.global_norm() <= 1.0 + 1e-4);
        adam.step(&mut store, &grads, 0.05);
    }
    // Weights stayed finite.
    for (_, p) in store.iter() {
        assert!(p.value.all_finite(), "parameter {} diverged", p.name);
    }
}
