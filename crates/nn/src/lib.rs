#![warn(missing_docs)]
//! Neural-network building blocks for the AdaMove reproduction.
//!
//! Layers hold [`adamove_autograd::ParamId`]s into a shared
//! [`adamove_autograd::ParamStore`] and expose `forward`/`step` methods that
//! record ops on a [`adamove_autograd::Graph`]. The crate covers exactly the
//! architecture space of the paper:
//!
//! - [`layers::Linear`], [`layers::Embedding`] — the base model's embedding
//!   concat and FC predictor (paper Eqs. 4, 6);
//! - [`layers::RnnCell`], [`layers::GruCell`], [`layers::LstmCell`] and the
//!   [`layers::Recurrent`] sequence wrapper — the trajectory-encoder choices
//!   of Fig. 5;
//! - [`layers::MultiHeadAttention`], [`layers::TransformerEncoderLayer`] —
//!   the Transformer encoder variant and the history-attention module
//!   (paper Eqs. 7–8);
//! - [`loss`] — cross-entropy (Eq. 10), InfoNCE (Eq. 9) and the hybrid
//!   objective (Eq. 11);
//! - [`optim`] — Adam, SGD, the accuracy-plateau LR schedule and early
//!   stopping described in §IV-A;
//! - [`serialize`] — JSON checkpointing of a parameter store.

pub mod layers;
pub mod loss;
pub mod optim;
pub mod serialize;

pub use layers::{
    Embedding, GruCell, Linear, LstmCell, LstmState, MultiHeadAttention, Recurrent, RnnCell,
    TransformerEncoderLayer,
};
pub use loss::{hybrid_loss, info_nce};
pub use optim::{Adam, EarlyStopper, Optimizer, PlateauScheduler, Sgd};
