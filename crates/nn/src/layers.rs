//! Layers: affine, embedding, recurrent cells, attention, transformer.
//!
//! Each layer registers its parameters once (in `new`) and records forward
//! ops on a per-pass [`Graph`]. Layers are plain data (`ParamId`s + dims),
//! so a model is `Clone` and can be shared freely; all mutable state lives
//! in the [`ParamStore`].

use adamove_autograd::{Graph, ParamId, ParamStore, Var};
use adamove_tensor::{init, Matrix};
use rand::Rng;

/// Fully connected layer `y = x W (+ b)`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight, `in_dim x out_dim`.
    pub w: ParamId,
    /// Optional bias, `1 x out_dim`.
    pub b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Register a linear layer with Xavier-initialised weights.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let w = store.register(
            format!("{name}.w"),
            init::xavier_uniform(in_dim, out_dim, rng),
        );
        let b = bias.then(|| store.register(format!("{name}.b"), Matrix::zeros(1, out_dim)));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Apply to a `batch x in_dim` var.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        g.linear(self.w, self.b, x)
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// Lookup-table embedding.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// Table, `vocab x dim`.
    pub table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Register an embedding table with `N(0, 0.1)` initial weights.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let table = store.register(format!("{name}.table"), init::normal(vocab, dim, 0.1, rng));
        Self { table, vocab, dim }
    }

    /// Gather rows for `indices`, producing `indices.len() x dim`.
    pub fn forward(&self, g: &mut Graph, indices: &[u32]) -> Var {
        g.gather(self.table, indices)
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// State threading through an LSTM: `(hidden, cell)`.
#[derive(Debug, Clone, Copy)]
pub struct LstmState {
    /// Hidden state `batch x hidden` (one row per sequence; `1 x hidden`
    /// on the per-sample path).
    pub h: Var,
    /// Cell state `batch x hidden`.
    pub c: Var,
}

/// Vanilla (Elman) RNN cell: `h' = tanh(x W + h U + b)`.
#[derive(Debug, Clone)]
pub struct RnnCell {
    w: ParamId,
    u: ParamId,
    b: ParamId,
    hidden: usize,
}

impl RnnCell {
    /// Register the cell's parameters.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            w: store.register(
                format!("{name}.w"),
                init::xavier_uniform(input, hidden, rng),
            ),
            u: store.register(format!("{name}.u"), init::recurrent(hidden, hidden, rng)),
            b: store.register(format!("{name}.b"), Matrix::zeros(1, hidden)),
            hidden,
        }
    }

    /// One step; `x` is `1 x input`, `h` is `1 x hidden`.
    pub fn step(&self, g: &mut Graph, x: Var, h: Var) -> Var {
        let xw = g.linear(self.w, Some(self.b), x);
        let hu = g.linear(self.u, None, h);
        let s = g.add(xw, hu);
        g.tanh(s)
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }
}

/// GRU cell (Cho et al., 2014), the encoder the paper finds strongest in
/// Fig. 5.
#[derive(Debug, Clone)]
pub struct GruCell {
    // Fused gates: [r | z] over inputs and hidden.
    w_rz: ParamId,
    u_rz: ParamId,
    b_rz: ParamId,
    w_n: ParamId,
    u_n: ParamId,
    b_n: ParamId,
    hidden: usize,
}

impl GruCell {
    /// Register the cell's parameters.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            w_rz: store.register(
                format!("{name}.w_rz"),
                init::xavier_uniform(input, 2 * hidden, rng),
            ),
            u_rz: store.register(
                format!("{name}.u_rz"),
                init::recurrent(hidden, 2 * hidden, rng),
            ),
            b_rz: store.register(format!("{name}.b_rz"), Matrix::zeros(1, 2 * hidden)),
            w_n: store.register(
                format!("{name}.w_n"),
                init::xavier_uniform(input, hidden, rng),
            ),
            u_n: store.register(format!("{name}.u_n"), init::recurrent(hidden, hidden, rng)),
            b_n: store.register(format!("{name}.b_n"), Matrix::zeros(1, hidden)),
            hidden,
        }
    }

    /// One step; `x` is `1 x input`, `h` is `1 x hidden`.
    pub fn step(&self, g: &mut Graph, x: Var, h: Var) -> Var {
        let gates_x = g.linear(self.w_rz, Some(self.b_rz), x);
        let gates_h = g.linear(self.u_rz, None, h);
        let gates_pre = g.add(gates_x, gates_h);
        let gates = g.sigmoid(gates_pre);
        let r = g.slice_cols(gates, 0, self.hidden);
        let z = g.slice_cols(gates, self.hidden, self.hidden);

        let n_x = g.linear(self.w_n, Some(self.b_n), x);
        let h_u = g.linear(self.u_n, None, h);
        let rh = g.mul(r, h_u);
        let n_pre = g.add(n_x, rh);
        let n = g.tanh(n_pre);

        // h' = (1 - z) * n + z * h
        let zn = g.mul(z, n);
        let zh = g.mul(z, h);
        let n_minus_zn = g.sub(n, zn);
        g.add(n_minus_zn, zh)
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }
}

/// LSTM cell (Hochreiter & Schmidhuber, 1997) — the paper's default
/// trajectory encoder.
#[derive(Debug, Clone)]
pub struct LstmCell {
    // Fused gate order: [i | f | g | o].
    w: ParamId,
    u: ParamId,
    b: ParamId,
    hidden: usize,
}

impl LstmCell {
    /// Register the cell's parameters. The forget-gate bias chunk is
    /// initialised to 1.0 — the standard trick for stable early training.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let mut bias = Matrix::zeros(1, 4 * hidden);
        for c in hidden..2 * hidden {
            bias.set(0, c, 1.0);
        }
        Self {
            w: store.register(
                format!("{name}.w"),
                init::xavier_uniform(input, 4 * hidden, rng),
            ),
            u: store.register(
                format!("{name}.u"),
                init::recurrent(hidden, 4 * hidden, rng),
            ),
            b: store.register(format!("{name}.b"), bias),
            hidden,
        }
    }

    /// Zero initial state for a single sequence.
    pub fn zero_state(&self, g: &mut Graph) -> LstmState {
        self.zero_state_batch(g, 1)
    }

    /// Zero initial state for `batch` sequences stepped together (one row
    /// per sequence).
    pub fn zero_state_batch(&self, g: &mut Graph, batch: usize) -> LstmState {
        LstmState {
            h: g.constant(Matrix::zeros(batch, self.hidden)),
            c: g.constant(Matrix::zeros(batch, self.hidden)),
        }
    }

    /// One step; `x` is `batch x input` and `state` holds matching
    /// `batch x hidden` rows (`batch = 1` for the per-sample path). Every
    /// op in the cell is row-wise, so row `s` of a batched step is
    /// bit-identical to stepping sample `s` alone.
    pub fn step(&self, g: &mut Graph, x: Var, state: LstmState) -> LstmState {
        let gx = g.linear(self.w, Some(self.b), x);
        let gh = g.linear(self.u, None, state.h);
        let pre = g.add(gx, gh);
        let h = self.hidden;
        let i_pre = g.slice_cols(pre, 0, h);
        let f_pre = g.slice_cols(pre, h, h);
        let g_pre = g.slice_cols(pre, 2 * h, h);
        let o_pre = g.slice_cols(pre, 3 * h, h);
        let i = g.sigmoid(i_pre);
        let f = g.sigmoid(f_pre);
        let cand = g.tanh(g_pre);
        let o = g.sigmoid(o_pre);

        let fc = g.mul(f, state.c);
        let ig = g.mul(i, cand);
        let c = g.add(fc, ig);
        let ct = g.tanh(c);
        let hh = g.mul(o, ct);
        LstmState { h: hh, c }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }
}

/// A recurrent cell run over a whole sequence.
///
/// This is the `SeqEncoder` of paper Eq. 5 for the RNN-family choices.
#[derive(Debug, Clone)]
pub enum Recurrent {
    /// Elman RNN.
    Rnn(RnnCell),
    /// Gated recurrent unit.
    Gru(GruCell),
    /// Long short-term memory.
    Lstm(LstmCell),
}

impl Recurrent {
    /// Hidden width of the wrapped cell.
    pub fn hidden(&self) -> usize {
        match self {
            Recurrent::Rnn(c) => c.hidden(),
            Recurrent::Gru(c) => c.hidden(),
            Recurrent::Lstm(c) => c.hidden(),
        }
    }

    /// Encode a `seq_len x input` var, returning all hidden states as a
    /// `seq_len x hidden` var.
    pub fn encode_all(&self, g: &mut Graph, xs: Var) -> Var {
        let seq_len = g.value(xs).rows();
        assert!(seq_len > 0, "Recurrent::encode_all: empty sequence");
        let mut outputs = Vec::with_capacity(seq_len);
        match self {
            Recurrent::Rnn(cell) => {
                let mut h = g.constant(Matrix::zeros(1, cell.hidden()));
                for t in 0..seq_len {
                    let x = g.row(xs, t);
                    h = cell.step(g, x, h);
                    outputs.push(h);
                }
            }
            Recurrent::Gru(cell) => {
                let mut h = g.constant(Matrix::zeros(1, cell.hidden()));
                for t in 0..seq_len {
                    let x = g.row(xs, t);
                    h = cell.step(g, x, h);
                    outputs.push(h);
                }
            }
            Recurrent::Lstm(cell) => {
                let mut state = cell.zero_state(g);
                for t in 0..seq_len {
                    let x = g.row(xs, t);
                    state = cell.step(g, x, state);
                    outputs.push(state.h);
                }
            }
        }
        g.concat_rows(&outputs)
    }

    /// Encode a sequence and return only the final hidden state (`1 x hidden`).
    pub fn encode_last(&self, g: &mut Graph, xs: Var) -> Var {
        let all = self.encode_all(g, xs);
        let last = g.value(all).rows() - 1;
        g.row(all, last)
    }

    /// Batched stepping — the `forward_batch` path: `steps[t]` holds time
    /// step `t` of every sequence as a `batch x input` var (row `s` =
    /// sequence `s`), and the result is one `batch x hidden` var per step.
    ///
    /// All sequences must share the same length (callers bucket by length).
    /// Row `s` of every output is bit-identical to running
    /// [`Recurrent::encode_all`] on sequence `s` alone: the cells are
    /// row-wise and the device kernels accumulate each output row
    /// independently in the same `k` order, so batching amortises the
    /// weight-matrix passes without changing a single bit.
    pub fn encode_steps(&self, g: &mut Graph, steps: &[Var]) -> Vec<Var> {
        assert!(!steps.is_empty(), "Recurrent::encode_steps: empty sequence");
        let batch = g.value(steps[0]).rows();
        let mut outputs = Vec::with_capacity(steps.len());
        match self {
            Recurrent::Rnn(cell) => {
                let mut h = g.constant(Matrix::zeros(batch, cell.hidden()));
                for &x in steps {
                    h = cell.step(g, x, h);
                    outputs.push(h);
                }
            }
            Recurrent::Gru(cell) => {
                let mut h = g.constant(Matrix::zeros(batch, cell.hidden()));
                for &x in steps {
                    h = cell.step(g, x, h);
                    outputs.push(h);
                }
            }
            Recurrent::Lstm(cell) => {
                let mut state = cell.zero_state_batch(g, batch);
                for &x in steps {
                    state = cell.step(g, x, state);
                    outputs.push(state.h);
                }
            }
        }
        outputs
    }
}

/// Scaled dot-product multi-head attention.
///
/// With `heads == 1` and no output projection bias this reduces to the
/// history-fusion attention of paper Eqs. 7–8.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    dim: usize,
}

impl MultiHeadAttention {
    /// Register projections; `dim` must be divisible by `heads`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            heads > 0 && dim.is_multiple_of(heads),
            "attention: dim {dim} not divisible by heads {heads}"
        );
        Self {
            wq: Linear::new(store, &format!("{name}.wq"), dim, dim, false, rng),
            wk: Linear::new(store, &format!("{name}.wk"), dim, dim, false, rng),
            wv: Linear::new(store, &format!("{name}.wv"), dim, dim, false, rng),
            wo: Linear::new(store, &format!("{name}.wo"), dim, dim, false, rng),
            heads,
            dim,
        }
    }

    /// Attend `query` (`q_len x dim`) over `context` (`kv_len x dim`),
    /// returning `q_len x dim`.
    pub fn forward(&self, g: &mut Graph, query: Var, context: Var) -> Var {
        self.forward_masked(g, query, context, None)
    }

    /// Attention with an optional additive score mask (`q_len x kv_len`,
    /// typically `0` for allowed and `-1e9` for blocked positions). Use
    /// [`causal_mask`] for autoregressive self-attention.
    pub fn forward_masked(
        &self,
        g: &mut Graph,
        query: Var,
        context: Var,
        mask: Option<&Matrix>,
    ) -> Var {
        let q = self.wq.forward(g, query);
        let k = self.wk.forward(g, context);
        let v = self.wv.forward(g, context);
        let dk = self.dim / self.heads;
        let scale = 1.0 / (dk as f32).sqrt();
        let mask_var = mask.map(|m| g.constant(m.clone()));

        let mut head_outs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = g.slice_cols(q, h * dk, dk);
            let kh = g.slice_cols(k, h * dk, dk);
            let vh = g.slice_cols(v, h * dk, dk);
            let scores = g.matmul_nt(qh, kh);
            let mut scaled = g.scale(scores, scale);
            if let Some(m) = mask_var {
                scaled = g.add(scaled, m);
            }
            let attn = g.softmax_rows(scaled);
            head_outs.push(g.matmul(attn, vh));
        }
        let concat = if head_outs.len() == 1 {
            head_outs[0]
        } else {
            g.concat_cols(&head_outs)
        };
        self.wo.forward(g, concat)
    }

    /// Batched causal self-attention — the `forward_batch` path. `x` is
    /// `batch` same-length sequences stacked sample-major into
    /// `(batch * seq_len) x dim`; the result has the same layout.
    ///
    /// The Q/K/V and output projections run as single whole-batch weight
    /// passes (that is the speedup: each weight matrix streams once per
    /// batch instead of once per sample), while the attention scores stay
    /// per-sample blocks — which both avoids the O((batch*seq_len)^2)
    /// score matrix and keeps every sample's rows bit-identical to
    /// [`MultiHeadAttention::forward_masked`] on that sample alone.
    pub fn forward_causal_batch(&self, g: &mut Graph, x: Var, batch: usize, seq_len: usize) -> Var {
        debug_assert_eq!(g.value(x).rows(), batch * seq_len);
        let q = self.wq.forward(g, x);
        let k = self.wk.forward(g, x);
        let v = self.wv.forward(g, x);
        let dk = self.dim / self.heads;
        let scale = 1.0 / (dk as f32).sqrt();
        let mask = g.constant(causal_mask(seq_len));

        let mut sample_outs = Vec::with_capacity(batch);
        for s in 0..batch {
            let qs = g.slice_rows(q, s * seq_len, seq_len);
            let ks = g.slice_rows(k, s * seq_len, seq_len);
            let vs = g.slice_rows(v, s * seq_len, seq_len);
            let mut head_outs = Vec::with_capacity(self.heads);
            for h in 0..self.heads {
                let qh = g.slice_cols(qs, h * dk, dk);
                let kh = g.slice_cols(ks, h * dk, dk);
                let vh = g.slice_cols(vs, h * dk, dk);
                let scores = g.matmul_nt(qh, kh);
                let scaled = g.scale(scores, scale);
                let masked = g.add(scaled, mask);
                let attn = g.softmax_rows(masked);
                head_outs.push(g.matmul(attn, vh));
            }
            sample_outs.push(if head_outs.len() == 1 {
                head_outs[0]
            } else {
                g.concat_cols(&head_outs)
            });
        }
        let stacked = if sample_outs.len() == 1 {
            sample_outs[0]
        } else {
            g.concat_rows(&sample_outs)
        };
        self.wo.forward(g, stacked)
    }

    /// Model width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }
}

/// Affine layer normalisation (gain/bias over the feature axis).
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gain: ParamId,
    bias: ParamId,
    eps: f32,
}

impl LayerNorm {
    /// Register gain (ones) and bias (zeros).
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        Self {
            gain: store.register(format!("{name}.gain"), Matrix::full(1, dim, 1.0)),
            bias: store.register(format!("{name}.bias"), Matrix::zeros(1, dim)),
            eps: 1e-5,
        }
    }

    /// Normalise each row, then apply the affine transform.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let n = g.layer_norm_rows(x, self.eps);
        let gv = g.param(self.gain);
        let bv = g.param(self.bias);
        let scaled = g.mul_row_broadcast(n, gv);
        g.add_row_broadcast(scaled, bv)
    }
}

/// Pre-norm Transformer encoder layer: MHA + FFN, residual connections.
///
/// Matches the paper's Fig. 5 configuration ("two-layer architecture with
/// 8 attention heads") when stacked twice.
#[derive(Debug, Clone)]
pub struct TransformerEncoderLayer {
    attn: MultiHeadAttention,
    norm1: LayerNorm,
    norm2: LayerNorm,
    ff1: Linear,
    ff2: Linear,
}

impl TransformerEncoderLayer {
    /// Register the layer's parameters; `ff_dim` is the FFN inner width.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        ff_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            attn: MultiHeadAttention::new(store, &format!("{name}.attn"), dim, heads, rng),
            norm1: LayerNorm::new(store, &format!("{name}.norm1"), dim),
            norm2: LayerNorm::new(store, &format!("{name}.norm2"), dim),
            ff1: Linear::new(store, &format!("{name}.ff1"), dim, ff_dim, true, rng),
            ff2: Linear::new(store, &format!("{name}.ff2"), ff_dim, dim, true, rng),
        }
    }

    /// Self-attention over a `seq_len x dim` var.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        self.forward_masked(g, x, None)
    }

    /// Causal self-attention: position `t` only attends to positions `<= t`,
    /// so row `t` of the output is a valid prefix representation.
    pub fn forward_causal(&self, g: &mut Graph, x: Var) -> Var {
        let n = g.value(x).rows();
        let mask = causal_mask(n);
        self.forward_masked(g, x, Some(&mask))
    }

    /// Batched causal pass over `batch` same-length sequences stacked
    /// sample-major into `(batch * seq_len) x dim`. Norms, FFN and
    /// residuals are row-wise and the attention is per-sample blocks
    /// (see [`MultiHeadAttention::forward_causal_batch`]), so each
    /// sample's rows are bit-identical to
    /// [`TransformerEncoderLayer::forward_causal`] on that sample alone.
    pub fn forward_causal_batch(&self, g: &mut Graph, x: Var, batch: usize, seq_len: usize) -> Var {
        let n1 = self.norm1.forward(g, x);
        let a = self.attn.forward_causal_batch(g, n1, batch, seq_len);
        let x2 = g.add(x, a);
        let n2 = self.norm2.forward(g, x2);
        let f1 = self.ff1.forward(g, n2);
        let r = g.relu(f1);
        let f2 = self.ff2.forward(g, r);
        g.add(x2, f2)
    }

    fn forward_masked(&self, g: &mut Graph, x: Var, mask: Option<&Matrix>) -> Var {
        // Pre-norm self-attention with residual.
        let n1 = self.norm1.forward(g, x);
        let a = self.attn.forward_masked(g, n1, n1, mask);
        let x2 = g.add(x, a);
        // Pre-norm FFN with residual.
        let n2 = self.norm2.forward(g, x2);
        let f1 = self.ff1.forward(g, n2);
        let r = g.relu(f1);
        let f2 = self.ff2.forward(g, r);
        g.add(x2, f2)
    }
}

/// Additive causal mask: `0` on and below the diagonal, `-1e9` above.
pub fn causal_mask(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |r, c| if c <= r { 0.0 } else { -1e9 })
}

/// Fixed sinusoidal positional encodings (Vaswani et al., 2017), added to
/// the inputs of the Transformer encoder since self-attention is otherwise
/// order-invariant.
pub fn positional_encoding(seq_len: usize, dim: usize) -> Matrix {
    Matrix::from_fn(seq_len, dim, |pos, i| {
        let exponent = (2 * (i / 2)) as f32 / dim as f32;
        let freq = 1.0 / 10000f32.powf(exponent);
        let angle = pos as f32 * freq;
        if i % 2 == 0 {
            angle.sin()
        } else {
            angle.cos()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamove_autograd::gradcheck::check_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const EPS: f32 = 1e-2;
    const RTOL: f32 = 3e-2;
    const ATOL: f32 = 3e-3;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn linear_shapes_and_bias() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 3, 5, true, &mut rng);
        assert_eq!(lin.in_dim(), 3);
        assert_eq!(lin.out_dim(), 5);
        let mut g = Graph::new(&store);
        let x = g.constant(Matrix::zeros(2, 3));
        let y = lin.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (2, 5));
        // Bias initialised to zero: zero input -> zero output.
        assert!(g.value(y).as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn embedding_lookup_returns_table_rows() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 10, 4, &mut rng);
        assert_eq!(emb.vocab(), 10);
        assert_eq!(emb.dim(), 4);
        let expected = store.value(emb.table).row(3).to_vec();
        let mut g = Graph::new(&store);
        let e = emb.forward(&mut g, &[3, 3]);
        assert_eq!(g.value(e).row(0), &expected[..]);
        assert_eq!(g.value(e).row(1), &expected[..]);
    }

    #[test]
    fn rnn_cell_gradcheck() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let cell = RnnCell::new(&mut store, "rnn", 3, 4, &mut rng);
        let xs = init::normal(4, 3, 1.0, &mut rng);
        check_gradients(
            &mut store,
            |g| {
                let x = g.constant(xs.clone());
                let h = Recurrent::Rnn(cell.clone()).encode_last(g, x);
                g.mean_all(h)
            },
            EPS,
            RTOL,
            ATOL,
        )
        .unwrap();
    }

    #[test]
    fn gru_cell_gradcheck() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "gru", 3, 4, &mut rng);
        let xs = init::normal(3, 3, 1.0, &mut rng);
        check_gradients(
            &mut store,
            |g| {
                let x = g.constant(xs.clone());
                let h = Recurrent::Gru(cell.clone()).encode_last(g, x);
                g.mean_all(h)
            },
            EPS,
            RTOL,
            ATOL,
        )
        .unwrap();
    }

    #[test]
    fn lstm_cell_gradcheck() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 3, 4, &mut rng);
        let xs = init::normal(3, 3, 1.0, &mut rng);
        check_gradients(
            &mut store,
            |g| {
                let x = g.constant(xs.clone());
                let h = Recurrent::Lstm(cell.clone()).encode_last(g, x);
                g.mean_all(h)
            },
            EPS,
            RTOL,
            ATOL,
        )
        .unwrap();
    }

    #[test]
    fn lstm_forget_bias_is_one() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 2, 3, &mut rng);
        let _ = cell;
        let b = store.find("lstm.b").unwrap();
        let bias = store.value(b);
        // Gate order [i | f | g | o]: forget chunk is columns 3..6.
        assert_eq!(&bias.as_slice()[3..6], &[1.0, 1.0, 1.0]);
        assert_eq!(&bias.as_slice()[0..3], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn recurrent_encode_all_shapes() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        for enc in [
            Recurrent::Rnn(RnnCell::new(&mut store, "r", 3, 5, &mut rng)),
            Recurrent::Gru(GruCell::new(&mut store, "g", 3, 5, &mut rng)),
            Recurrent::Lstm(LstmCell::new(&mut store, "l", 3, 5, &mut rng)),
        ] {
            assert_eq!(enc.hidden(), 5);
            let mut g = Graph::new(&store);
            let x = g.constant(init::normal(4, 3, 1.0, &mut rng));
            let all = enc.encode_all(&mut g, x);
            assert_eq!(g.value(all).shape(), (4, 5));
            let x2 = g.constant(init::normal(4, 3, 1.0, &mut rng));
            let last = enc.encode_last(&mut g, x2);
            assert_eq!(g.value(last).shape(), (1, 5));
        }
    }

    #[test]
    fn recurrent_state_depends_on_history() {
        // Same final input, different prefixes -> different final state.
        let mut rng = rng();
        let mut store = ParamStore::new();
        let enc = Recurrent::Lstm(LstmCell::new(&mut store, "l", 2, 4, &mut rng));
        let mut g = Graph::new(&store);
        let a = g.constant(Matrix::from_vec(2, 2, vec![1., 0., 0.5, 0.5]));
        let b = g.constant(Matrix::from_vec(2, 2, vec![-1., 2., 0.5, 0.5]));
        let ha = enc.encode_last(&mut g, a);
        let hb = enc.encode_last(&mut g, b);
        assert_ne!(g.value(ha), g.value(hb));
    }

    #[test]
    fn attention_gradcheck_single_head() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new(&mut store, "a", 4, 1, &mut rng);
        let q = init::normal(2, 4, 1.0, &mut rng);
        let kv = init::normal(3, 4, 1.0, &mut rng);
        check_gradients(
            &mut store,
            |g| {
                let qv = g.constant(q.clone());
                let kvv = g.constant(kv.clone());
                let out = attn.forward(g, qv, kvv);
                let t = g.tanh(out);
                g.mean_all(t)
            },
            EPS,
            RTOL,
            ATOL,
        )
        .unwrap();
    }

    #[test]
    fn attention_multi_head_shapes() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new(&mut store, "a", 8, 4, &mut rng);
        assert_eq!(attn.dim(), 8);
        assert_eq!(attn.heads(), 4);
        let mut g = Graph::new(&store);
        let q = g.constant(init::normal(5, 8, 1.0, &mut rng));
        let kv = g.constant(init::normal(7, 8, 1.0, &mut rng));
        let out = attn.forward(&mut g, q, kv);
        assert_eq!(g.value(out).shape(), (5, 8));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn attention_rejects_indivisible_heads() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        MultiHeadAttention::new(&mut store, "a", 6, 4, &mut rng);
    }

    #[test]
    fn layer_norm_affine_gradcheck() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let lin = Linear::new(&mut store, "l", 4, 4, true, &mut rng);
        let x = init::normal(2, 4, 1.0, &mut rng);
        check_gradients(
            &mut store,
            |g| {
                let xv = g.constant(x.clone());
                let h = lin.forward(g, xv);
                let n = ln.forward(g, h);
                let t = g.tanh(n);
                g.mean_all(t)
            },
            EPS,
            RTOL,
            ATOL,
        )
        .unwrap();
    }

    #[test]
    fn transformer_layer_preserves_shape_and_gradchecks() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let layer = TransformerEncoderLayer::new(&mut store, "t", 4, 2, 8, &mut rng);
        let x = init::normal(3, 4, 1.0, &mut rng);
        {
            let mut g = Graph::new(&store);
            let xv = g.constant(x.clone());
            let out = layer.forward(&mut g, xv);
            assert_eq!(g.value(out).shape(), (3, 4));
        }
        check_gradients(
            &mut store,
            |g| {
                let xv = g.constant(x.clone());
                let out = layer.forward(g, xv);
                let t = g.tanh(out);
                g.mean_all(t)
            },
            EPS,
            RTOL,
            ATOL,
        )
        .unwrap();
    }

    #[test]
    fn positional_encoding_properties() {
        let pe = positional_encoding(10, 6);
        assert_eq!(pe.shape(), (10, 6));
        // Position 0: sin(0)=0 for even dims, cos(0)=1 for odd dims.
        assert_eq!(pe.get(0, 0), 0.0);
        assert_eq!(pe.get(0, 1), 1.0);
        // Values bounded in [-1, 1]; distinct positions get distinct codes.
        assert!(pe.as_slice().iter().all(|v| v.abs() <= 1.0));
        assert_ne!(pe.row(1), pe.row(2));
    }
}

#[cfg(test)]
mod causal_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn causal_mask_blocks_future_positions() {
        let m = causal_mask(3);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(0, 2), -1e9);
        assert_eq!(m.get(2, 1), 0.0);
    }

    #[test]
    fn causal_prefix_representations_ignore_the_future() {
        // Row t of a causal forward over the full sequence must equal row t
        // of a forward over just the first t+1 rows.
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let layer = TransformerEncoderLayer::new(&mut store, "t", 4, 2, 8, &mut rng);
        let x_full = init::normal(4, 4, 1.0, &mut rng);
        let mut x_prefix = Matrix::zeros(2, 4);
        for r in 0..2 {
            x_prefix.row_mut(r).copy_from_slice(x_full.row(r));
        }
        let mut g = Graph::new(&store);
        let xf = g.constant(x_full);
        let of = layer.forward_causal(&mut g, xf);
        let xp = g.constant(x_prefix);
        let op = layer.forward_causal(&mut g, xp);
        for c in 0..4 {
            let a = g.value(of).get(1, c);
            let b = g.value(op).get(1, c);
            assert!((a - b).abs() < 1e-5, "col {c}: {a} vs {b}");
        }
        // Unmasked attention does NOT have this property.
        let mut g2 = Graph::new(&store);
        let xf2 = g2.constant(g.value(xf).clone());
        let of2 = layer.forward(&mut g2, xf2);
        let row_full = g2.value(of2).row(1).to_vec();
        let xp2 = g2.constant(g.value(xp).clone());
        let op2 = layer.forward(&mut g2, xp2);
        let row_prefix = g2.value(op2).row(1).to_vec();
        assert_ne!(row_full, row_prefix);
    }

    fn row_bits(row: &[f32]) -> Vec<u32> {
        row.iter().map(|v| v.to_bits()).collect()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn encode_steps_is_bit_identical_to_per_sample_encoding() {
        // The batching contract: row `s` of every batched step must equal
        // the per-sample encoding of sequence `s` bit for bit, for every
        // cell kind.
        let (batch, seq, input, hidden) = (3usize, 4usize, 6usize, 5usize);
        let mut rng = rng();
        let mut store = ParamStore::new();
        let encoders = [
            Recurrent::Rnn(RnnCell::new(&mut store, "rnn", input, hidden, &mut rng)),
            Recurrent::Gru(GruCell::new(&mut store, "gru", input, hidden, &mut rng)),
            Recurrent::Lstm(LstmCell::new(&mut store, "lstm", input, hidden, &mut rng)),
        ];
        let xs: Vec<Matrix> = (0..batch)
            .map(|s| {
                Matrix::from_fn(seq, input, |r, c| {
                    ((s * 31 + r * 7 + c) as f32 * 0.37).sin()
                })
            })
            .collect();
        for enc in &encoders {
            let mut per_sample = Vec::with_capacity(batch);
            for x in &xs {
                let mut g = Graph::new(&store);
                let xv = g.constant(x.clone());
                let all = enc.encode_all(&mut g, xv);
                per_sample.push(g.value(all).clone());
            }
            let mut g = Graph::new(&store);
            let steps: Vec<Var> = (0..seq)
                .map(|t| {
                    let m = Matrix::from_fn(batch, input, |s, c| xs[s].get(t, c));
                    g.constant(m)
                })
                .collect();
            let outs = enc.encode_steps(&mut g, &steps);
            assert_eq!(outs.len(), seq);
            for (t, out) in outs.iter().enumerate() {
                let val = g.value(*out);
                assert_eq!(val.shape(), (batch, hidden));
                for (s, reference) in per_sample.iter().enumerate() {
                    assert_eq!(
                        row_bits(val.row(s)),
                        row_bits(reference.row(t)),
                        "t={t} s={s}"
                    );
                }
            }
        }
    }

    #[test]
    fn forward_causal_batch_is_bit_identical_to_per_sample() {
        let (batch, seq, dim, heads, ff) = (3usize, 4usize, 8usize, 2usize, 16usize);
        let mut rng = rng();
        let mut store = ParamStore::new();
        let layer = TransformerEncoderLayer::new(&mut store, "enc", dim, heads, ff, &mut rng);
        let xs: Vec<Matrix> = (0..batch)
            .map(|s| init::normal(seq, dim, 1.0, &mut rng).scale(0.5 + s as f32 * 0.1))
            .collect();
        let mut per_sample = Vec::with_capacity(batch);
        for x in &xs {
            let mut g = Graph::new(&store);
            let xv = g.constant(x.clone());
            let out = layer.forward_causal(&mut g, xv);
            per_sample.push(g.value(out).clone());
        }
        // Sample-major stacking: rows s*seq .. (s+1)*seq belong to sample s.
        let stacked = Matrix::from_fn(batch * seq, dim, |r, c| xs[r / seq].get(r % seq, c));
        let mut g = Graph::new(&store);
        let xv = g.constant(stacked);
        let out = layer.forward_causal_batch(&mut g, xv, batch, seq);
        let val = g.value(out);
        assert_eq!(val.shape(), (batch * seq, dim));
        for (s, reference) in per_sample.iter().enumerate() {
            for t in 0..seq {
                assert_eq!(
                    row_bits(val.row(s * seq + t)),
                    row_bits(reference.row(t)),
                    "s={s} t={t}"
                );
            }
        }
    }
}
