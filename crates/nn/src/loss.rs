//! Loss functions: cross-entropy (paper Eq. 10), InfoNCE (Eq. 9) and the
//! hybrid training objective (Eq. 11).

use adamove_autograd::{Graph, Var};

/// InfoNCE contrastive loss (paper Eq. 9).
///
/// `anchor` is `1 x d` (the recent-only representation `h_N`), `positive` is
/// `1 x d` (the history-enhanced representation `h̃_N`), `negatives` is
/// `k x d` (history-enhanced representations of prefixes whose next location
/// differs from the target). Similarities are cosine (rows are L2-normalised
/// before the dot product) and the loss is the cross-entropy of picking the
/// positive among `[positive; negatives]`.
///
/// With no negatives the loss degenerates to `-sim(anchor, positive)` scaled
/// into a softmax of one element (zero loss) — callers should skip the
/// contrastive term in that case; we still return a well-defined value.
pub fn info_nce(g: &mut Graph, anchor: Var, positive: Var, negatives: Option<Var>) -> Var {
    let a = g.normalize_rows(anchor);
    let candidates = match negatives {
        Some(neg) => {
            let stacked = g.concat_rows(&[positive, neg]);
            g.normalize_rows(stacked)
        }
        None => g.normalize_rows(positive),
    };
    // 1 x (1 + k) cosine similarities; target index 0 is the positive.
    let sims = g.matmul_nt(a, candidates);
    g.cross_entropy_logits(sims, &[0])
}

/// Hybrid objective `L = L_cls + lambda * L_con` (paper Eq. 11).
pub fn hybrid_loss(g: &mut Graph, cls: Var, con: Option<Var>, lambda: f32) -> Var {
    match con {
        Some(con) if lambda != 0.0 => {
            let scaled = g.scale(con, lambda);
            g.add(cls, scaled)
        }
        _ => cls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamove_autograd::ParamStore;
    use adamove_tensor::Matrix;

    #[test]
    fn info_nce_prefers_aligned_positive() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let anchor = g.constant(Matrix::from_vec(1, 2, vec![1.0, 0.0]));
        let pos_aligned = g.constant(Matrix::from_vec(1, 2, vec![1.0, 0.0]));
        let pos_orthogonal = g.constant(Matrix::from_vec(1, 2, vec![0.0, 1.0]));
        let negs = g.constant(Matrix::from_vec(2, 2, vec![0.0, 1.0, -1.0, 0.0]));

        let aligned = info_nce(&mut g, anchor, pos_aligned, Some(negs));
        let misaligned = info_nce(&mut g, anchor, pos_orthogonal, Some(negs));
        assert!(
            g.scalar(aligned) < g.scalar(misaligned),
            "aligned positive must give lower loss: {} vs {}",
            g.scalar(aligned),
            g.scalar(misaligned)
        );
    }

    #[test]
    fn info_nce_without_negatives_is_zero() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let anchor = g.constant(Matrix::from_vec(1, 2, vec![0.3, 0.7]));
        let positive = g.constant(Matrix::from_vec(1, 2, vec![0.3, 0.7]));
        let loss = info_nce(&mut g, anchor, positive, None);
        // Softmax over one candidate is 1 -> NLL is 0.
        assert!(g.scalar(loss).abs() < 1e-6);
    }

    #[test]
    fn info_nce_is_scale_invariant_in_inputs() {
        // Cosine similarity ignores magnitudes, so scaling any input must
        // not change the loss.
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let anchor1 = g.constant(Matrix::from_vec(1, 2, vec![1.0, 0.2]));
        let anchor2 = g.constant(Matrix::from_vec(1, 2, vec![10.0, 2.0]));
        let pos = g.constant(Matrix::from_vec(1, 2, vec![0.9, 0.1]));
        let negs = g.constant(Matrix::from_vec(1, 2, vec![-0.5, 0.8]));
        let l1 = info_nce(&mut g, anchor1, pos, Some(negs));
        let l2 = info_nce(&mut g, anchor2, pos, Some(negs));
        assert!((g.scalar(l1) - g.scalar(l2)).abs() < 1e-5);
    }

    #[test]
    fn hybrid_loss_weights_contrastive_term() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let cls = g.constant(Matrix::from_vec(1, 1, vec![2.0]));
        let con = g.constant(Matrix::from_vec(1, 1, vec![1.0]));
        let l = hybrid_loss(&mut g, cls, Some(con), 0.5);
        assert!((g.scalar(l) - 2.5).abs() < 1e-6);
        // lambda = 0 or no contrastive term: classification only.
        let l0 = hybrid_loss(&mut g, cls, Some(con), 0.0);
        assert_eq!(g.scalar(l0), 2.0);
        let ln = hybrid_loss(&mut g, cls, None, 0.8);
        assert_eq!(g.scalar(ln), 2.0);
    }
}
