//! Checkpointing: save/load a [`ParamStore`] as JSON.
//!
//! The format is a flat list of `(name, rows, cols, data)` records. Loading
//! matches by name, so a checkpoint survives reordering of parameter
//! registration but not renaming — intentional: names are the stable
//! identity of a parameter across code versions.

use adamove_autograd::ParamStore;
use adamove_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

#[derive(Debug, Serialize, Deserialize)]
struct ParamRecord {
    name: String,
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Errors from checkpoint load/save.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed JSON.
    Json(serde_json::Error),
    /// The checkpoint does not cover a parameter in the store, or shapes
    /// disagree.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Json(e) => write!(f, "checkpoint parse error: {e}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        CheckpointError::Json(e)
    }
}

/// Serialise every parameter to a JSON string.
pub fn to_json(store: &ParamStore) -> String {
    let records: Vec<ParamRecord> = store
        .iter()
        .map(|(_, p)| ParamRecord {
            name: p.name.clone(),
            rows: p.value.rows(),
            cols: p.value.cols(),
            data: p.value.as_slice().to_vec(),
        })
        .collect();
    serde_json::to_string(&records).expect("param serialisation cannot fail")
}

/// Load parameter values from a JSON string into an already-constructed
/// store (the model must be built first so ids exist). Every parameter in
/// the store must be present in the checkpoint with a matching shape.
pub fn from_json(store: &mut ParamStore, json: &str) -> Result<(), CheckpointError> {
    let records: Vec<ParamRecord> = serde_json::from_str(json)?;
    for record in records {
        let Some(id) = store.find(&record.name) else {
            // Extra parameters in the checkpoint are tolerated (forward
            // compatibility); missing ones are checked below.
            continue;
        };
        let current = store.value(id);
        if current.shape() != (record.rows, record.cols) {
            return Err(CheckpointError::Mismatch(format!(
                "`{}` is {:?} in the store but {}x{} in the checkpoint",
                record.name,
                current.shape(),
                record.rows,
                record.cols
            )));
        }
        *store.value_mut(id) = Matrix::from_vec(record.rows, record.cols, record.data);
    }
    // Verify coverage.
    let parsed: Vec<ParamRecord> = serde_json::from_str(json)?;
    let names: std::collections::HashSet<&str> = parsed.iter().map(|r| r.name.as_str()).collect();
    for (_, p) in store.iter() {
        if !names.contains(p.name.as_str()) {
            return Err(CheckpointError::Mismatch(format!(
                "store parameter `{}` missing from checkpoint",
                p.name
            )));
        }
    }
    Ok(())
}

/// Save a store to a file.
pub fn save(store: &ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    std::fs::write(path, to_json(store))?;
    Ok(())
}

/// Load a store from a file.
pub fn load(store: &mut ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let json = std::fs::read_to_string(path)?;
    from_json(store, &json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ParamStore {
        let mut s = ParamStore::new();
        s.register("a", Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]));
        s.register("b", Matrix::from_vec(1, 3, vec![5., 6., 7.]));
        s
    }

    #[test]
    fn round_trip_preserves_values() {
        let original = store();
        let json = to_json(&original);
        let mut fresh = ParamStore::new();
        fresh.register("a", Matrix::zeros(2, 2));
        fresh.register("b", Matrix::zeros(1, 3));
        from_json(&mut fresh, &json).unwrap();
        let a = fresh.find("a").unwrap();
        let b = fresh.find("b").unwrap();
        assert_eq!(fresh.value(a).as_slice(), &[1., 2., 3., 4.]);
        assert_eq!(fresh.value(b).as_slice(), &[5., 6., 7.]);
    }

    #[test]
    fn load_survives_registration_reorder() {
        let json = to_json(&store());
        let mut reordered = ParamStore::new();
        reordered.register("b", Matrix::zeros(1, 3));
        reordered.register("a", Matrix::zeros(2, 2));
        from_json(&mut reordered, &json).unwrap();
        let a = reordered.find("a").unwrap();
        assert_eq!(reordered.value(a).as_slice(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let json = to_json(&store());
        let mut wrong = ParamStore::new();
        wrong.register("a", Matrix::zeros(3, 3));
        let err = from_json(&mut wrong, &json).unwrap_err();
        assert!(err.to_string().contains("`a`"), "{err}");
    }

    #[test]
    fn missing_parameter_is_an_error() {
        let json = to_json(&store());
        let mut extra = ParamStore::new();
        extra.register("a", Matrix::zeros(2, 2));
        extra.register("new_param", Matrix::zeros(1, 1));
        let err = from_json(&mut extra, &json).unwrap_err();
        assert!(err.to_string().contains("new_param"), "{err}");
    }

    #[test]
    fn malformed_json_is_an_error() {
        let mut s = store();
        assert!(matches!(
            from_json(&mut s, "not json"),
            Err(CheckpointError::Json(_))
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("adamove_nn_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let original = store();
        save(&original, &path).unwrap();
        let mut fresh = ParamStore::new();
        fresh.register("a", Matrix::zeros(2, 2));
        fresh.register("b", Matrix::zeros(1, 3));
        load(&mut fresh, &path).unwrap();
        let a = fresh.find("a").unwrap();
        assert_eq!(fresh.value(a).as_slice(), &[1., 2., 3., 4.]);
        std::fs::remove_file(&path).ok();
    }
}
