//! Optimisers and the paper's learning-rate schedule.
//!
//! §IV-A: Adam, initial LR `1e-2`, decayed "proportionally with improvements
//! in accuracy" (a reduce-on-plateau schedule keyed on validation accuracy),
//! early stop when the LR reaches `1e-4`, at most 30 epochs, batch size 50.

use adamove_autograd::{Gradients, ParamStore};
use adamove_tensor::Matrix;

/// A first-order optimiser stepping a [`ParamStore`] with [`Gradients`].
pub trait Optimizer {
    /// Apply one update; `lr` is supplied per step so schedulers compose.
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients, lr: f32);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    momentum: f32,
    velocity: Vec<Option<Matrix>>,
}

impl Sgd {
    /// Plain SGD (`momentum = 0`) or classical momentum.
    pub fn new(momentum: f32) -> Self {
        Self {
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients, lr: f32) {
        if self.velocity.len() < store.len() {
            self.velocity.resize(store.len(), None);
        }
        for (id, grad) in grads.iter() {
            if self.momentum == 0.0 {
                store
                    .value_mut(id)
                    .axpy(-lr, grad)
                    .expect("sgd: param/grad shape mismatch");
                continue;
            }
            let v = self.velocity[id.index()]
                .get_or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
            // v = momentum * v + grad ; w -= lr * v
            v.map_inplace(|x| x * self.momentum);
            v.add_assign(grad).expect("sgd velocity shape");
            store
                .value_mut(id)
                .axpy(-lr, v)
                .expect("sgd: param/grad shape mismatch");
        }
    }
}

/// Adam (Kingma & Ba, 2014) — the paper's optimiser.
#[derive(Debug)]
pub struct Adam {
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    moments: Vec<Option<(Matrix, Matrix)>>,
}

impl Adam {
    /// Standard hyperparameters `beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`.
    pub fn new() -> Self {
        Self::with_betas(0.9, 0.999, 1e-8)
    }

    /// Custom moment decay rates.
    pub fn with_betas(beta1: f32, beta2: f32, eps: f32) -> Self {
        Self {
            beta1,
            beta2,
            eps,
            t: 0,
            moments: Vec::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Default for Adam {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients, lr: f32) {
        if self.moments.len() < store.len() {
            self.moments.resize(store.len(), None);
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (id, grad) in grads.iter() {
            let (m, v) = self.moments[id.index()].get_or_insert_with(|| {
                (
                    Matrix::zeros(grad.rows(), grad.cols()),
                    Matrix::zeros(grad.rows(), grad.cols()),
                )
            });
            let w = store.value_mut(id);
            let ws = w.as_mut_slice();
            for (((wv, &gv), mv), vv) in ws
                .iter_mut()
                .zip(grad.as_slice())
                .zip(m.as_mut_slice())
                .zip(v.as_mut_slice())
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                let m_hat = *mv / bc1;
                let v_hat = *vv / bc2;
                *wv -= lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

/// Reduce-on-plateau learning-rate schedule keyed on validation accuracy,
/// with the early-stop rule from §IV-A: stop when the LR falls to `min_lr`.
#[derive(Debug, Clone)]
pub struct PlateauScheduler {
    lr: f32,
    factor: f32,
    patience: usize,
    min_lr: f32,
    best: f32,
    stale: usize,
}

impl PlateauScheduler {
    /// `initial_lr = 1e-2`, `factor` multiplies the LR on a plateau,
    /// `patience` is the number of non-improving epochs tolerated, and the
    /// schedule reports exhaustion once the LR reaches `min_lr = 1e-4`.
    pub fn new(initial_lr: f32, factor: f32, patience: usize, min_lr: f32) -> Self {
        assert!(factor > 0.0 && factor < 1.0, "factor must be in (0, 1)");
        Self {
            lr: initial_lr,
            factor,
            patience,
            min_lr,
            best: f32::NEG_INFINITY,
            stale: 0,
        }
    }

    /// The paper's configuration: `1e-2 -> 1e-4`, halving with patience 2.
    pub fn paper_default() -> Self {
        Self::new(1e-2, 0.5, 2, 1e-4)
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Record an epoch's validation accuracy. Returns `true` when the metric
    /// improved.
    pub fn observe(&mut self, accuracy: f32) -> bool {
        if accuracy > self.best {
            self.best = accuracy;
            self.stale = 0;
            true
        } else {
            self.stale += 1;
            if self.stale > self.patience {
                self.lr = (self.lr * self.factor).max(self.min_lr);
                self.stale = 0;
            }
            false
        }
    }

    /// True once the LR has decayed to the floor — the paper's early-stop
    /// criterion.
    pub fn exhausted(&self) -> bool {
        // Tolerant comparison: repeated f32 multiplication can land a hair
        // above the floor (e.g. 1e-3 * 0.1 = 1.0000001e-4).
        self.lr <= self.min_lr * (1.0 + 1e-4)
    }

    /// Best accuracy seen so far.
    pub fn best(&self) -> f32 {
        self.best
    }
}

/// Patience-based early stopping on a validation metric (kept separate from
/// the LR schedule so ablations can use either alone).
#[derive(Debug, Clone)]
pub struct EarlyStopper {
    patience: usize,
    best: f32,
    stale: usize,
}

impl EarlyStopper {
    /// Stop after `patience` consecutive non-improving observations.
    pub fn new(patience: usize) -> Self {
        Self {
            patience,
            best: f32::NEG_INFINITY,
            stale: 0,
        }
    }

    /// Record a metric; returns `true` when training should stop.
    pub fn observe(&mut self, metric: f32) -> bool {
        if metric > self.best {
            self.best = metric;
            self.stale = 0;
        } else {
            self.stale += 1;
        }
        self.stale >= self.patience
    }

    /// Best metric seen so far.
    pub fn best(&self) -> f32 {
        self.best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamove_autograd::Graph;

    /// Minimise `mean((w - target)^2)` and assert convergence.
    fn quadratic_descent(opt: &mut dyn Optimizer, lr: f32, iters: usize) -> f32 {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_vec(1, 2, vec![5.0, -3.0]));
        let target = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        for _ in 0..iters {
            let grads = {
                let mut g = Graph::new(&store);
                let wv = g.param(w);
                let t = g.constant(target.clone());
                let d = g.sub(wv, t);
                let sq = g.mul(d, d);
                let loss = g.mean_all(sq);
                g.backward(loss)
            };
            opt.step(&mut store, &grads, lr);
        }
        let v = store.value(w);
        (v.get(0, 0) - 1.0).abs() + (v.get(0, 1) - 2.0).abs()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.0);
        assert!(quadratic_descent(&mut opt, 0.5, 100) < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let mut opt = Sgd::new(0.9);
        assert!(quadratic_descent(&mut opt, 0.05, 200) < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new();
        let err = quadratic_descent(&mut opt, 0.1, 300);
        assert!(err < 1e-2, "residual {err}");
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn adam_handles_sparse_gradients() {
        // Only one of two params receives gradients; the other must be
        // untouched and the step must not panic.
        let mut store = ParamStore::new();
        let a = store.register("a", Matrix::from_vec(1, 1, vec![1.0]));
        let b = store.register("b", Matrix::from_vec(1, 1, vec![1.0]));
        let mut grads = Gradients::zeros_like(&store);
        grads.accumulate(a, &Matrix::from_vec(1, 1, vec![1.0]));
        let mut opt = Adam::new();
        opt.step(&mut store, &grads, 0.1);
        assert!(store.value(a).get(0, 0) < 1.0);
        assert_eq!(store.value(b).get(0, 0), 1.0);
    }

    #[test]
    fn plateau_scheduler_decays_and_exhausts() {
        let mut s = PlateauScheduler::new(1e-2, 0.1, 1, 1e-4);
        assert!(s.observe(0.5)); // improvement
        assert_eq!(s.lr(), 1e-2);
        assert!(!s.observe(0.4)); // stale 1 (== patience, not over)
        assert_eq!(s.lr(), 1e-2);
        assert!(!s.observe(0.4)); // stale 2 > patience -> decay
        assert!((s.lr() - 1e-3).abs() < 1e-9);
        assert!(!s.exhausted());
        s.observe(0.3);
        s.observe(0.3); // decay to 1e-4
        assert!(s.exhausted());
        // Floor holds.
        s.observe(0.2);
        s.observe(0.2);
        assert!(s.lr() >= 1e-4 - f32::EPSILON);
        assert_eq!(s.best(), 0.5);
    }

    #[test]
    fn plateau_scheduler_resets_on_improvement() {
        let mut s = PlateauScheduler::new(1e-2, 0.5, 2, 1e-4);
        s.observe(0.5);
        s.observe(0.4);
        s.observe(0.4);
        assert_eq!(s.lr(), 1e-2); // patience not yet exceeded
        s.observe(0.6); // improvement resets staleness
        s.observe(0.5);
        s.observe(0.5);
        assert_eq!(s.lr(), 1e-2);
    }

    #[test]
    fn early_stopper_fires_after_patience() {
        let mut e = EarlyStopper::new(3);
        assert!(!e.observe(0.5));
        assert!(!e.observe(0.4));
        assert!(!e.observe(0.4));
        assert!(e.observe(0.4));
        assert_eq!(e.best(), 0.5);
    }
}
