//! Restart drill against the real `adamove_serve` binary: SIGKILL the
//! daemon mid-load, restart it from `--state-dir`, and the replies must
//! be bit-identical to a run that never crashed; drain it gracefully
//! (the stdin `drain` line) and the restart replays zero records. This
//! is the whole durability promise exercised over a real socket, a real
//! process boundary, and a real kill -9.

use adamove_serve::{Client, Quality};
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

const USERS: u32 = 16;
const LOCATIONS: u32 = 8;
const STEPS: i64 = 12;
const CRASH_AT: i64 = 6;

struct Daemon {
    child: Child,
    stdout: BufReader<ChildStdout>,
    addr: SocketAddr,
    restored: Option<u64>,
}

impl Daemon {
    /// Start the real binary and wait for its listening line. With a
    /// state dir, also capture the "restored N replayed observe(s)"
    /// line the daemon prints before it binds.
    fn start(state_dir: &PathBuf) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_adamove_serve"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--shards",
                "2",
                "--workers",
                "1",
                "--users",
                &USERS.to_string(),
                "--locations",
                &LOCATIONS.to_string(),
                "--sync",
                "per-record",
                // Far beyond the workload: a restart must rebuild from
                // the journal alone unless the daemon drained.
                "--checkpoint-interval",
                "100000",
                "--no-admission",
                "--state-dir",
            ])
            .arg(state_dir)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn adamove_serve");
        let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
        let mut restored = None;
        let addr = loop {
            let mut line = String::new();
            if stdout.read_line(&mut line).expect("daemon stdout") == 0 {
                panic!("daemon exited before listening");
            }
            if let Some(rest) = line.split("restored ").nth(1) {
                restored = rest
                    .split_whitespace()
                    .next()
                    .and_then(|n| n.parse::<u64>().ok());
            }
            if let Some(rest) = line.split("listening on ").nth(1) {
                let addr = rest.split_whitespace().next().expect("addr token");
                break addr.parse().expect("listening addr");
            }
        };
        Daemon {
            child,
            stdout,
            addr,
            restored,
        }
    }

    /// kill -9: no drain, no checkpoint, no goodbye.
    fn sigkill(mut self) {
        self.child.kill().expect("SIGKILL daemon");
        let _ = self.child.wait();
    }

    /// Graceful drain via the stdin channel; waits for a clean exit and
    /// returns the drain confirmation line.
    fn drain(mut self) -> String {
        let mut stdin = self.child.stdin.take().expect("child stdin");
        stdin.write_all(b"drain\n").expect("write drain");
        stdin.flush().expect("flush drain");
        let deadline = Instant::now() + Duration::from_secs(30);
        let status = loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                break status;
            }
            assert!(Instant::now() < deadline, "daemon did not drain in time");
            // lint:allow(sleep-in-test): bounded backoff inside a deadline poll for the child's exit
            std::thread::sleep(Duration::from_millis(20));
        };
        assert!(status.success(), "drained daemon exited with {status}");
        let mut out = String::new();
        let mut line = String::new();
        while self.stdout.read_line(&mut line).unwrap_or(0) > 0 {
            out.push_str(&line);
            line.clear();
        }
        out
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "adamove-restart-drill-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn observe_steps(client: &mut Client, steps: std::ops::Range<i64>) {
    for step in steps {
        for u in 0..USERS {
            client
                .observe(u, (u + step as u32) % LOCATIONS, step * 3600)
                .expect("observe");
        }
    }
}

/// Full prediction state per user, scores included — the wire-level
/// fingerprint two runs must agree on bit for bit.
fn fingerprint(client: &mut Client) -> Vec<(Quality, u32, u32, Vec<f32>)> {
    (0..USERS)
        .map(|u| {
            let p = client
                .predict(u, STEPS * 3600, true)
                .expect("predict")
                .expect("live window");
            (p.quality, p.top, p.window_len, p.scores)
        })
        .collect()
}

#[test]
fn sigkill_restart_is_bit_identical_to_the_golden_run() {
    // Golden: same binary, same seed, never interrupted.
    let golden_dir = temp_dir("golden");
    let golden = Daemon::start(&golden_dir);
    let mut client = Client::connect(golden.addr).expect("connect golden");
    observe_steps(&mut client, 0..STEPS);
    let expected = fingerprint(&mut client);
    drop(client);
    golden.sigkill();

    // Crash run: half the load, kill -9, restart from the state dir,
    // the other half.
    let crash_dir = temp_dir("crash");
    let first = Daemon::start(&crash_dir);
    assert_eq!(first.restored, Some(0), "fresh state dir replays nothing");
    let mut client = Client::connect(first.addr).expect("connect");
    observe_steps(&mut client, 0..CRASH_AT);
    drop(client);
    first.sigkill();

    let second = Daemon::start(&crash_dir);
    assert_eq!(
        second.restored,
        Some((CRASH_AT as u64) * USERS as u64),
        "every pre-crash observe must be replayed"
    );
    let mut client = Client::connect(second.addr).expect("reconnect");
    observe_steps(&mut client, CRASH_AT..STEPS);
    let actual = fingerprint(&mut client);
    assert_eq!(actual, expected, "post-restart replies differ from golden");

    // The registry agrees with the printed replay count.
    let snapshot = client.snapshot().expect("snapshot");
    assert!(
        snapshot.contains("\"engine_replayed_observes_total\": 96")
            || snapshot.contains("\"engine_replayed_observes_total\":96"),
        "snapshot should carry the replay counter: {snapshot}"
    );
    drop(client);
    second.sigkill();
    let _ = std::fs::remove_dir_all(golden_dir);
    let _ = std::fs::remove_dir_all(crash_dir);
}

#[test]
fn graceful_drain_then_restart_replays_nothing() {
    let golden_dir = temp_dir("drain-golden");
    let golden = Daemon::start(&golden_dir);
    let mut client = Client::connect(golden.addr).expect("connect golden");
    observe_steps(&mut client, 0..STEPS);
    let expected = fingerprint(&mut client);
    drop(client);
    golden.sigkill();

    let dir = temp_dir("drain");
    let first = Daemon::start(&dir);
    let mut client = Client::connect(first.addr).expect("connect");
    observe_steps(&mut client, 0..STEPS);
    drop(client);
    let tail = first.drain();
    assert!(
        tail.contains("drained") && tail.contains("checkpointed 2 shard(s)"),
        "drain confirmation missing from: {tail}"
    );

    let second = Daemon::start(&dir);
    assert_eq!(
        second.restored,
        Some(0),
        "a drained daemon restores from checkpoints alone"
    );
    let mut client = Client::connect(second.addr).expect("reconnect");
    let actual = fingerprint(&mut client);
    assert_eq!(actual, expected, "post-drain replies differ from golden");
    drop(client);
    second.sigkill();
    let _ = std::fs::remove_dir_all(golden_dir);
    let _ = std::fs::remove_dir_all(dir);
}
