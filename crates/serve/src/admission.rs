//! Admission control: per-shard load shedding with hysteresis, driven by
//! the engine's own `adamove-obs` signals.
//!
//! Two signals feed the policy, both already maintained by the engine:
//!
//! - **queue depth** — the `engine_queue_depth{shard=..}` gauge, an
//!   instantaneous backlog reading;
//! - **windowed predict p99** — successive snapshots of
//!   `engine_predict_latency_ns{shard=..}` are differenced
//!   ([`window_delta`], now provided by
//!   [`adamove_obs::window`](adamove_obs::window) and re-exported here
//!   for compatibility; the server's ticker uses the full
//!   [`WindowedHistogram`](adamove_obs::WindowedHistogram) ring) so the
//!   percentile reflects the *last tick*, not the run so far. A
//!   cumulative p99 never recovers after one bad burst, which would turn
//!   a transient overload into a permanent shed.
//!
//! The controller is deliberately split from signal collection:
//! [`AdmissionController::ingest`] takes plain readings, so tests drive
//! synthetic depth/latency sequences through the exact policy the server
//! runs (the server's ticker thread is just a loop of reads + `ingest`).
//!
//! **Hysteresis.** A shard *enters* shedding when `depth >= queue_high`
//! or the windowed p99 (with at least `min_window_samples` behind it)
//! reaches `p99_high_ns`; it *exits* only when `depth <= queue_low` and
//! the p99 signal has fallen to `p99_low_ns` or gone quiet. The gap
//! between the high and low water marks is what prevents shed-flapping
//! when load sits exactly at a single threshold.

use adamove_obs::{labeled, Counter, Gauge, HistogramSnapshot, Registry};
use std::sync::atomic::{AtomicBool, Ordering};

pub use adamove_obs::window_delta;

/// Thresholds for the per-shard shed policy. Defaults are sized for the
/// engine's observed single-core latency profile (predict p99 ≈ 2.7 ms
/// unloaded): shedding engages well before the 10 ms serving SLO.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Enter shedding when a shard's queue depth reaches this.
    pub queue_high: usize,
    /// Exit shedding requires depth at or below this.
    pub queue_low: usize,
    /// Enter shedding when the windowed predict p99 reaches this (ns).
    pub p99_high_ns: u64,
    /// Exit shedding requires the windowed p99 at or below this (ns).
    pub p99_low_ns: u64,
    /// Ignore the latency signal until a window holds this many samples
    /// (a 1-sample "window" says nothing about the tail).
    pub min_window_samples: u64,
    /// Retry-After hint carried on shed replies, milliseconds.
    pub retry_after_ms: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            queue_high: 256,
            queue_low: 64,
            p99_high_ns: 8_000_000,
            p99_low_ns: 4_000_000,
            min_window_samples: 32,
            retry_after_ms: 50,
        }
    }
}

/// Outcome of an admission check for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Forward the request to the engine.
    Accept,
    /// Reject with a typed `Shed` error carrying this back-off hint.
    Shed {
        /// Milliseconds the client should wait before retrying.
        retry_after_ms: u32,
    },
}

struct ShardState {
    shedding: AtomicBool,
    accepted: Counter,
    shed: Counter,
    transitions: Counter,
    shedding_gauge: Gauge,
}

/// Per-shard shed policy with obs-visible decisions. Shared by reference
/// between the server's connection workers (calling [`decide`]) and its
/// signal ticker (calling [`ingest`]); all state is atomic.
///
/// [`decide`]: AdmissionController::decide
/// [`ingest`]: AdmissionController::ingest
pub struct AdmissionController {
    config: AdmissionConfig,
    shards: Vec<ShardState>,
}

impl AdmissionController {
    /// A controller for `shards` shards, registering
    /// `serve_accepted_total{shard=..}`, `serve_shed_total{shard=..}`,
    /// `serve_shed_transitions_total{shard=..}` and the
    /// `serve_shedding{shard=..}` gauge in `registry`.
    pub fn new(shards: usize, config: AdmissionConfig, registry: &Registry) -> Self {
        let shards = (0..shards)
            .map(|i| {
                let s = i.to_string();
                let l = |name: &str| labeled(name, &[("shard", &s)]);
                ShardState {
                    shedding: AtomicBool::new(false),
                    accepted: registry.counter(&l("serve_accepted_total")),
                    shed: registry.counter(&l("serve_shed_total")),
                    transitions: registry.counter(&l("serve_shed_transitions_total")),
                    shedding_gauge: registry.gauge(&l("serve_shedding")),
                }
            })
            .collect();
        Self { config, shards }
    }

    /// The thresholds in force.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Feed one reading for `shard`: instantaneous queue depth plus the
    /// latency histogram delta for the tick window. Applies the
    /// hysteresis rule and returns whether the shard is now shedding.
    /// Out-of-range shards are ignored (returns false).
    pub fn ingest(&self, shard: usize, queue_depth: usize, window: &HistogramSnapshot) -> bool {
        let Some(state) = self.shards.get(shard) else {
            return false;
        };
        let cfg = &self.config;
        let latency_speaks = window.count >= cfg.min_window_samples;
        let p99 = window.percentile(0.99);
        let now_shedding = if state.shedding.load(Ordering::Relaxed) {
            // Exit only below BOTH low water marks (quiet latency counts
            // as recovered — an idle shard records no samples at all).
            let depth_ok = queue_depth <= cfg.queue_low;
            let latency_ok = !latency_speaks || p99 <= cfg.p99_low_ns as f64;
            !(depth_ok && latency_ok)
        } else {
            queue_depth >= cfg.queue_high || (latency_speaks && p99 >= cfg.p99_high_ns as f64)
        };
        let was = state.shedding.swap(now_shedding, Ordering::Relaxed);
        if was != now_shedding {
            state.transitions.inc();
            state
                .shedding_gauge
                .set(if now_shedding { 1.0 } else { 0.0 });
        }
        now_shedding
    }

    /// Admission check for one request bound for `shard`. Counts the
    /// decision in the `serve_accepted_total` / `serve_shed_total`
    /// family. Out-of-range shards accept (the engine will fail the
    /// request with its own typed error).
    pub fn decide(&self, shard: usize) -> Decision {
        let Some(state) = self.shards.get(shard) else {
            return Decision::Accept;
        };
        if state.shedding.load(Ordering::Relaxed) {
            state.shed.inc();
            Decision::Shed {
                retry_after_ms: self.config.retry_after_ms,
            }
        } else {
            state.accepted.inc();
            Decision::Accept
        }
    }

    /// Whether `shard` is currently shedding (no counter side effects).
    pub fn is_shedding(&self, shard: usize) -> bool {
        self.shards
            .get(shard)
            .is_some_and(|s| s.shedding.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> HistogramSnapshot {
        HistogramSnapshot::empty()
    }

    /// A window whose every sample is ~`ns`, `n` samples deep.
    fn window_at(ns: u64, n: u64) -> HistogramSnapshot {
        let h = adamove_obs::Histogram::new();
        for _ in 0..n {
            h.record(ns);
        }
        h.snapshot()
    }

    #[test]
    fn depth_hysteresis_no_flapping_at_threshold() {
        let reg = Registry::new();
        let cfg = AdmissionConfig::default();
        let ctl = AdmissionController::new(1, cfg.clone(), &reg);

        // Sitting exactly at queue_high - 1 never sheds.
        for _ in 0..10 {
            assert!(!ctl.ingest(0, cfg.queue_high - 1, &quiet()));
        }
        // Crossing the high water mark sheds...
        assert!(ctl.ingest(0, cfg.queue_high, &quiet()));
        // ...and dropping just under it does NOT recover: the exit bar
        // is the low water mark. This asymmetry is the hysteresis.
        for _ in 0..10 {
            assert!(ctl.ingest(0, cfg.queue_high - 1, &quiet()));
            assert!(ctl.ingest(0, cfg.queue_low + 1, &quiet()));
        }
        assert!(!ctl.ingest(0, cfg.queue_low, &quiet()));
        // Exactly one enter + one exit transition despite 20+ readings
        // straddling the high mark.
        assert_eq!(
            reg.counter(&labeled("serve_shed_transitions_total", &[("shard", "0")]))
                .get(),
            2
        );
    }

    #[test]
    fn latency_signal_sheds_and_recovers() {
        let reg = Registry::new();
        let cfg = AdmissionConfig::default();
        let ctl = AdmissionController::new(1, cfg.clone(), &reg);

        // Sparse window: latency says nothing, no shed.
        let sparse = window_at(cfg.p99_high_ns * 2, cfg.min_window_samples - 1);
        assert!(!ctl.ingest(0, 0, &sparse));
        // Deep slow window: shed.
        let slow = window_at(cfg.p99_high_ns * 2, cfg.min_window_samples);
        assert!(ctl.ingest(0, 0, &slow));
        // Still slow-ish (between low and high): stay shedding.
        let mid = window_at(
            (cfg.p99_low_ns + cfg.p99_high_ns) / 2,
            cfg.min_window_samples,
        );
        assert!(ctl.ingest(0, 0, &mid));
        // Fast window: recover. (1-2-5 buckets: pick a value whose
        // bucket upper bound is still <= p99_low so the interpolated
        // percentile cannot exceed the low mark.)
        let fast = window_at(900_000, cfg.min_window_samples);
        assert!(!ctl.ingest(0, 0, &fast));
        // Idle shard (empty window) also counts as recovered.
        assert!(ctl.ingest(0, 0, &slow));
        assert!(!ctl.ingest(0, 0, &quiet()));
    }

    #[test]
    fn decide_counts_accepts_and_sheds_exactly() {
        let reg = Registry::new();
        let cfg = AdmissionConfig {
            retry_after_ms: 75,
            ..AdmissionConfig::default()
        };
        let ctl = AdmissionController::new(2, cfg.clone(), &reg);

        // Shard 1 shedding, shard 0 healthy.
        ctl.ingest(1, cfg.queue_high, &quiet());
        let mut accepts = 0u64;
        let mut sheds = 0u64;
        for i in 0..10 {
            match ctl.decide(i % 2) {
                Decision::Accept => accepts += 1,
                Decision::Shed { retry_after_ms } => {
                    assert_eq!(retry_after_ms, 75);
                    sheds += 1;
                }
            }
        }
        assert_eq!((accepts, sheds), (5, 5));
        let c = |name: &str, shard: &str| reg.counter(&labeled(name, &[("shard", shard)])).get();
        assert_eq!(c("serve_accepted_total", "0"), 5);
        assert_eq!(c("serve_shed_total", "0"), 0);
        assert_eq!(c("serve_accepted_total", "1"), 0);
        assert_eq!(c("serve_shed_total", "1"), 5);
        assert_eq!(
            reg.gauge(&labeled("serve_shedding", &[("shard", "1")]))
                .get(),
            1.0
        );

        // Recovery flips the gauge back and re-admits.
        ctl.ingest(1, 0, &quiet());
        assert_eq!(ctl.decide(1), Decision::Accept);
        assert_eq!(
            reg.gauge(&labeled("serve_shedding", &[("shard", "1")]))
                .get(),
            0.0
        );
    }

    #[test]
    fn window_delta_isolates_the_tick() {
        let h = adamove_obs::Histogram::new();
        // One catastrophic burst...
        for _ in 0..1000 {
            h.record(50_000_000);
        }
        let after_burst = h.snapshot();
        // ...then a healthy tick.
        for _ in 0..100 {
            h.record(1_000_000);
        }
        let now = h.snapshot();
        // Cumulative p99 is still catastrophic; the windowed p99 is not.
        assert!(now.percentile(0.99) > 10_000_000.0);
        let window = window_delta(&now, &after_burst);
        assert_eq!(window.count, 100);
        assert!(window.percentile(0.99) <= 2_000_000.0);
        // Saturation: a reset histogram behaves as "whole window".
        let reset = window_delta(&after_burst, &now);
        assert_eq!(reset.count, 0);
    }

    #[test]
    fn out_of_range_shard_is_inert() {
        let reg = Registry::new();
        let ctl = AdmissionController::new(1, AdmissionConfig::default(), &reg);
        assert!(!ctl.ingest(7, usize::MAX, &quiet()));
        assert_eq!(ctl.decide(7), Decision::Accept);
        assert!(!ctl.is_shedding(7));
    }
}
