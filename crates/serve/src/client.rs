//! A small blocking client for the serve protocol: one request in
//! flight per call, replies matched by arrival order (the protocol is
//! strictly request/reply per connection, like the engine's own
//! per-user FIFO).
//!
//! This is the reference implementation the loadgen binary, the
//! differential-oracle tests, and the example all drive; it reuses the
//! exact codec the server runs, so a client-side decode of a
//! `Prediction` frame is bit-identical to the engine's reply.

use crate::protocol::{self, DecodeError, ErrorCode, Frame, Quality};
use adamove_obs::TraceContext;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// What a request can come back as, beyond transport failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, EOF mid-frame).
    Io(io::Error),
    /// The server's bytes did not decode (protocol bug or corruption).
    Protocol(DecodeError),
    /// The server answered with a typed error frame.
    Server {
        /// The typed error code.
        code: ErrorCode,
        /// Back-off hint in milliseconds (0 = none given).
        retry_after_ms: u32,
        /// Server-provided context.
        message: String,
    },
    /// The server answered with a frame that does not fit the request
    /// (e.g. `ObserveOk` for a predict).
    UnexpectedReply(Frame),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Server {
                code,
                retry_after_ms,
                message,
            } => write!(
                f,
                "server error [{code}] retry-after {retry_after_ms}ms: {message}"
            ),
            ClientError::UnexpectedReply(frame) => {
                write!(f, "unexpected reply frame 0x{:02x}", frame.type_byte())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A prediction as decoded off the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WirePrediction {
    /// How the scores were produced.
    pub quality: Quality,
    /// Argmax location id.
    pub top: u32,
    /// Window points behind the adaptation.
    pub window_len: u32,
    /// Dense scores; empty unless the request asked for them.
    pub scores: Vec<f32>,
}

/// One blocking connection to an `adamove-serve` server.
pub struct Client {
    stream: TcpStream,
    inbuf: Vec<u8>,
    max_payload: u32,
}

impl Client {
    /// Connect with the default payload cap and no socket timeouts.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            inbuf: Vec::with_capacity(1024),
            max_payload: protocol::DEFAULT_MAX_PAYLOAD,
        })
    }

    /// Bound every read/write on the connection (per syscall).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        Ok(())
    }

    /// Send one frame and block for the next reply frame.
    pub fn roundtrip(&mut self, request: &Frame) -> Result<Frame, ClientError> {
        self.send(request)?;
        self.recv()
    }

    /// Send a frame without waiting (for pipelining; pair with
    /// [`Client::recv`] in order).
    pub fn send(&mut self, request: &Frame) -> Result<(), ClientError> {
        let bytes = protocol::encode_to_vec(request);
        self.stream.write_all(&bytes)?;
        Ok(())
    }

    /// Send one frame carrying a client-minted [`TraceContext`] and block
    /// for the reply, which echoes the context back (`None` only if the
    /// server predates the trace extension). Replies to traced requests
    /// are byte-identical to untraced ones apart from the trace header —
    /// same scores, same quality, same error codes.
    pub fn roundtrip_traced(
        &mut self,
        request: &Frame,
        trace: TraceContext,
    ) -> Result<(Frame, Option<TraceContext>), ClientError> {
        self.send_traced(request, trace)?;
        self.recv_traced()
    }

    /// Send a frame with a trace header without waiting (pair with
    /// [`Client::recv_traced`] in order).
    pub fn send_traced(&mut self, request: &Frame, trace: TraceContext) -> Result<(), ClientError> {
        let mut bytes = Vec::new();
        protocol::encode_traced(request, Some(trace), &mut bytes);
        self.stream.write_all(&bytes)?;
        Ok(())
    }

    /// Block for the next frame, keeping any echoed trace context.
    pub fn recv_traced(&mut self) -> Result<(Frame, Option<TraceContext>), ClientError> {
        loop {
            match protocol::decode_traced(&self.inbuf, self.max_payload) {
                Ok(Some((frame, trace, consumed))) => {
                    self.inbuf.drain(..consumed);
                    return Ok((frame, trace));
                }
                Ok(None) => {
                    let mut chunk = [0u8; 4096];
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(ClientError::Io(io::ErrorKind::UnexpectedEof.into()));
                    }
                    self.inbuf.extend_from_slice(&chunk[..n]);
                }
                Err(e) => return Err(ClientError::Protocol(e)),
            }
        }
    }

    /// Block for the next frame from the server.
    pub fn recv(&mut self) -> Result<Frame, ClientError> {
        loop {
            match protocol::decode(&self.inbuf, self.max_payload) {
                Ok(Some((frame, consumed))) => {
                    self.inbuf.drain(..consumed);
                    return Ok(frame);
                }
                Ok(None) => {
                    let mut chunk = [0u8; 4096];
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(ClientError::Io(io::ErrorKind::UnexpectedEof.into()));
                    }
                    self.inbuf.extend_from_slice(&chunk[..n]);
                }
                Err(e) => return Err(ClientError::Protocol(e)),
            }
        }
    }

    fn expect_ok(reply: Frame) -> Result<Frame, ClientError> {
        match reply {
            Frame::Error {
                code,
                retry_after_ms,
                message,
            } => Err(ClientError::Server {
                code,
                retry_after_ms,
                message,
            }),
            other => Ok(other),
        }
    }

    /// Deliver a check-in.
    pub fn observe(&mut self, user: u32, loc: u32, time: i64) -> Result<(), ClientError> {
        let reply = Self::expect_ok(self.roundtrip(&Frame::Observe { user, loc, time })?)?;
        match reply {
            Frame::ObserveOk => Ok(()),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Predict `user`'s next location. `Ok(None)` when the user has no
    /// live window.
    pub fn predict(
        &mut self,
        user: u32,
        now: i64,
        want_scores: bool,
    ) -> Result<Option<WirePrediction>, ClientError> {
        let reply = Self::expect_ok(self.roundtrip(&Frame::Predict {
            user,
            now,
            want_scores,
        })?)?;
        match reply {
            Frame::Prediction {
                quality,
                top,
                window_len,
                scores,
            } => Ok(Some(WirePrediction {
                quality,
                top,
                window_len,
                scores,
            })),
            Frame::NoWindow => Ok(None),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Fetch the server's metric registry as flat JSON.
    pub fn snapshot(&mut self) -> Result<String, ClientError> {
        let reply = Self::expect_ok(self.roundtrip(&Frame::Snapshot)?)?;
        match reply {
            Frame::SnapshotReply { json } => Ok(json),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Fetch the server's flight-recorder dump (the tail-sampled
    /// anomalous-request ring) as flat JSON.
    pub fn diag(&mut self) -> Result<String, ClientError> {
        let reply = Self::expect_ok(self.roundtrip(&Frame::Diag)?)?;
        match reply {
            Frame::DiagReply { json } => Ok(json),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }
}
