//! `adamove-serve` — the zero-dependency network front door for the
//! AdaMove sharded engine.
//!
//! Three pieces, composed by [`serve`]:
//!
//! - [`protocol`] — a length-prefixed binary wire format (OBSERVE /
//!   PREDICT / SNAPSHOT / DIAG requests, typed error replies, versioned
//!   header, optional per-frame trace-context extension) with a total,
//!   panic-free codec;
//! - [`admission`] — per-shard load shedding with hysteresis, driven by
//!   the engine's own queue-depth gauges and windowed predict-latency
//!   histograms (`adamove_obs::WindowedHistogram`), with shed decisions
//!   exported as `serve_*_total` metrics and Retry-After hints on shed
//!   replies;
//! - [`server`] — a thread-per-core TCP server: one acceptor, N
//!   workers owning disjoint connection sets, one ticker feeding both
//!   admission and the always-on flight recorder's slow gate. Anomalous
//!   requests are tail-sampled into the recorder and dumpable with a
//!   DIAG frame.
//!
//! [`client`] is the matching blocking client used by the `loadgen`
//! bench binary, the testkit serving suites, and the examples.
//!
//! Everything here is plain `std` (TCP + threads + the workspace's own
//! crates) — no async runtime, no serialization framework.

pub mod admission;
pub mod client;
pub mod protocol;
pub mod server;

pub use admission::{window_delta, AdmissionConfig, AdmissionController, Decision};
pub use client::{Client, ClientError, WirePrediction};
pub use protocol::{
    decode, decode_traced, encode, encode_to_vec, encode_traced, DecodeError, ErrorCode, Frame,
    Quality, DEFAULT_MAX_PAYLOAD, HEADER_LEN, MAGIC, TRACE_FLAG, TRACE_PREFIX_LEN, VERSION,
};
pub use server::{serve, ServeConfig, ServerHandle};
