//! Standalone AdaMove serving daemon: bootstrap a model, start the
//! sharded engine behind the TCP front-end, and print the bound address.
//!
//! The model is randomly initialised (seeded) — this binary exists to
//! stand up a real serving endpoint for load generators, protocol
//! clients, and ops experiments, where serving behaviour (latency,
//! shedding, recovery) is the subject, not predictive accuracy. Swap in
//! a trained checkpoint by embedding the serve crate as a library.
//!
//! ```text
//! cargo run --release -p adamove-serve --bin adamove_serve -- \
//!     --addr 127.0.0.1:7070 --shards 4 --users 1000000
//! ```

use adamove::obs::{FlightRecorder, Registry, Tracer};
use adamove::{
    AdaMoveConfig, DurabilityConfig, EngineConfig, LightMob, RecoveryConfig, ShardedEngine,
    SyncPolicy,
};
use adamove_autograd::ParamStore;
use adamove_serve::{serve, AdmissionConfig, ServeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::BufRead;
use std::path::PathBuf;
use std::sync::{mpsc, Arc};
use std::time::Duration;

const USAGE: &str = "adamove_serve — AdaMove TCP serving daemon

USAGE:
    adamove_serve [OPTIONS]

OPTIONS:
    --addr <ADDR>        bind address (default 127.0.0.1:0 = free port)
    --shards <N>         engine shards (default: available cores)
    --workers <N>        connection worker threads (default: available cores)
    --users <N>          user-id space size (default 1000000)
    --locations <N>      location-id space size (default 200)
    --seed <N>           model init seed (default 7)
    --max-conns <N>      open-connection cap (default 1024)
    --duration-secs <N>  exit after N seconds (default: run forever)
    --flight-capacity <N>  flight-recorder ring capacity (default 64)
    --no-admission       disable load shedding
    --no-recovery        disable the self-healing layer
    --state-dir <DIR>    durable state directory: restore on start,
                         persist journal/checkpoints while serving
    --sync <POLICY>      fsync policy for --state-dir:
                         per-record | batched:<N> (default batched:64)
    --checkpoint-interval <N>  checkpoint every N observes per shard
                         (default: RecoveryConfig default)
    -h, --help           print this help

Writing a line containing exactly `drain` to stdin checkpoints every
shard to --state-dir and exits cleanly (the workspace forbids unsafe
code, so POSIX signal handlers are unavailable; stdin is the portable
drain channel). EOF on stdin does NOT drain.
";

struct Args {
    addr: String,
    shards: usize,
    workers: usize,
    users: u32,
    locations: u32,
    seed: u64,
    max_conns: usize,
    duration_secs: Option<u64>,
    flight_capacity: usize,
    admission: bool,
    recovery: bool,
    state_dir: Option<PathBuf>,
    sync: SyncPolicy,
    checkpoint_interval: Option<usize>,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        shards: 0,
        workers: 0,
        users: 1_000_000,
        locations: 200,
        seed: 7,
        max_conns: 1024,
        duration_secs: None,
        flight_capacity: 64,
        admission: true,
        recovery: true,
        state_dir: None,
        sync: SyncPolicy::Batched { records: 64 },
        checkpoint_interval: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}\n\n{USAGE}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--shards" => args.shards = parse_num(&value("--shards"), "--shards"),
            "--workers" => args.workers = parse_num(&value("--workers"), "--workers"),
            "--users" => args.users = parse_num(&value("--users"), "--users"),
            "--locations" => args.locations = parse_num(&value("--locations"), "--locations"),
            "--seed" => args.seed = parse_num(&value("--seed"), "--seed"),
            "--max-conns" => args.max_conns = parse_num(&value("--max-conns"), "--max-conns"),
            "--duration-secs" => {
                args.duration_secs = Some(parse_num(&value("--duration-secs"), "--duration-secs"))
            }
            "--flight-capacity" => {
                args.flight_capacity = parse_num(&value("--flight-capacity"), "--flight-capacity")
            }
            "--no-admission" => args.admission = false,
            "--no-recovery" => args.recovery = false,
            "--state-dir" => args.state_dir = Some(PathBuf::from(value("--state-dir"))),
            "--sync" => {
                let raw = value("--sync");
                args.sync = SyncPolicy::parse(&raw).unwrap_or_else(|| {
                    eprintln!("bad value {raw:?} for --sync\n\n{USAGE}");
                    std::process::exit(2);
                })
            }
            "--checkpoint-interval" => {
                args.checkpoint_interval = Some(parse_num(
                    &value("--checkpoint-interval"),
                    "--checkpoint-interval",
                ))
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad value {s:?} for {flag}\n\n{USAGE}");
        std::process::exit(2);
    })
}

fn main() {
    let args = parse_args();
    let shards = if args.shards == 0 {
        adamove::available_threads()
    } else {
        args.shards
    };

    // Seeded random init: serving behaviour is the subject here, and a
    // tiny embedding profile keeps 1M users ~16 MB of parameters.
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig::tiny(),
        args.locations,
        args.users,
        &mut rng,
    );
    // One flight-recorder ring shared by the server (request anomalies)
    // and the engine's tracer (shard panic/respawn events), so a DIAG
    // dump tells the whole story under one set of request ids.
    let recorder = Arc::new(FlightRecorder::new(args.flight_capacity));
    let durable = args.state_dir.is_some();
    let recovery = if args.recovery || durable {
        let mut rc = RecoveryConfig {
            supervise_interval: Some(Duration::from_millis(20)),
            ..RecoveryConfig::default()
        };
        if let Some(dir) = &args.state_dir {
            rc.durability = Some(DurabilityConfig {
                sync: args.sync,
                ..DurabilityConfig::new(dir.clone())
            });
        }
        if let Some(interval) = args.checkpoint_interval {
            rc.checkpoint_interval = interval;
        }
        Some(rc)
    } else {
        None
    };
    let engine = Arc::new(ShardedEngine::with_observability(
        Arc::new(model),
        Arc::new(store),
        EngineConfig {
            shards,
            recovery,
            ..EngineConfig::default()
        },
        None,
        Arc::new(Registry::new()),
        Tracer::with_sink(Arc::clone(&recorder) as _),
    ));
    if durable {
        // Replay runs on the worker threads before they take requests;
        // the flush barrier makes the replayed count below exact.
        engine.flush();
        let snap = engine.snapshot();
        println!(
            "adamove_serve restored {} replayed observe(s) from state dir",
            snap.replayed_observes
        );
    }

    let handle = serve(
        engine,
        ServeConfig {
            addr: args.addr.clone(),
            workers: args.workers,
            max_connections: args.max_conns,
            admission: args.admission.then(AdmissionConfig::default),
            flight_capacity: args.flight_capacity,
            flight_recorder: Some(Arc::clone(&recorder)),
            ..ServeConfig::default()
        },
    )
    .expect("failed to bind server");
    println!(
        "adamove_serve listening on {} ({} shards, {} users, {} locations, admission {}, recovery {})",
        handle.addr(),
        shards,
        args.users,
        args.locations,
        if args.admission { "on" } else { "off" },
        if args.recovery { "on" } else { "off" },
    );

    // Drain watcher: a line containing exactly `drain` on stdin begins a
    // graceful checkpoint-and-exit. The sender clone held by main keeps
    // the channel open, so stdin EOF (watcher thread exiting) is NOT a
    // drain — recv below keeps blocking until duration expiry.
    let (drain_tx, drain_rx) = mpsc::channel::<()>();
    let _keep_open = drain_tx.clone();
    std::thread::Builder::new()
        .name("drain-watcher".to_string())
        .spawn(move || {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let Ok(line) = line else { break };
                if line.trim() == "drain" {
                    let _ = drain_tx.send(());
                    break;
                }
            }
        })
        .expect("failed to spawn drain watcher");

    let drained = match args.duration_secs {
        Some(secs) => drain_rx.recv_timeout(Duration::from_secs(secs)).is_ok(),
        None => drain_rx.recv().is_ok(),
    };
    let engine = handle.stop();
    if durable {
        let shards_done = engine.checkpoint_all();
        println!(
            "adamove_serve {}: checkpointed {} shard(s) to state dir",
            if drained {
                "drained"
            } else {
                "duration expired"
            },
            shards_done
        );
    }
    // Final flight dump on stdout: the same flat JSON a DIAG frame
    // fetches over the wire, for post-mortems after the socket is gone.
    println!("{}", recorder.to_flat_json());
    if let Some(engine) = Arc::into_inner(engine) {
        let report = engine.shutdown();
        println!(
            "served {} predictions across {} shards",
            report.predictions, shards
        );
    }
}
