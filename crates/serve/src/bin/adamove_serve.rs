//! Standalone AdaMove serving daemon: bootstrap a model, start the
//! sharded engine behind the TCP front-end, and print the bound address.
//!
//! The model is randomly initialised (seeded) — this binary exists to
//! stand up a real serving endpoint for load generators, protocol
//! clients, and ops experiments, where serving behaviour (latency,
//! shedding, recovery) is the subject, not predictive accuracy. Swap in
//! a trained checkpoint by embedding the serve crate as a library.
//!
//! ```text
//! cargo run --release -p adamove-serve --bin adamove_serve -- \
//!     --addr 127.0.0.1:7070 --shards 4 --users 1000000
//! ```

use adamove::obs::{FlightRecorder, Registry, Tracer};
use adamove::{AdaMoveConfig, EngineConfig, LightMob, RecoveryConfig, ShardedEngine};
use adamove_autograd::ParamStore;
use adamove_serve::{serve, AdmissionConfig, ServeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "adamove_serve — AdaMove TCP serving daemon

USAGE:
    adamove_serve [OPTIONS]

OPTIONS:
    --addr <ADDR>        bind address (default 127.0.0.1:0 = free port)
    --shards <N>         engine shards (default: available cores)
    --workers <N>        connection worker threads (default: available cores)
    --users <N>          user-id space size (default 1000000)
    --locations <N>      location-id space size (default 200)
    --seed <N>           model init seed (default 7)
    --max-conns <N>      open-connection cap (default 1024)
    --duration-secs <N>  exit after N seconds (default: run forever)
    --flight-capacity <N>  flight-recorder ring capacity (default 64)
    --no-admission       disable load shedding
    --no-recovery        disable the self-healing layer
    -h, --help           print this help
";

struct Args {
    addr: String,
    shards: usize,
    workers: usize,
    users: u32,
    locations: u32,
    seed: u64,
    max_conns: usize,
    duration_secs: Option<u64>,
    flight_capacity: usize,
    admission: bool,
    recovery: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        shards: 0,
        workers: 0,
        users: 1_000_000,
        locations: 200,
        seed: 7,
        max_conns: 1024,
        duration_secs: None,
        flight_capacity: 64,
        admission: true,
        recovery: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}\n\n{USAGE}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--shards" => args.shards = parse_num(&value("--shards"), "--shards"),
            "--workers" => args.workers = parse_num(&value("--workers"), "--workers"),
            "--users" => args.users = parse_num(&value("--users"), "--users"),
            "--locations" => args.locations = parse_num(&value("--locations"), "--locations"),
            "--seed" => args.seed = parse_num(&value("--seed"), "--seed"),
            "--max-conns" => args.max_conns = parse_num(&value("--max-conns"), "--max-conns"),
            "--duration-secs" => {
                args.duration_secs = Some(parse_num(&value("--duration-secs"), "--duration-secs"))
            }
            "--flight-capacity" => {
                args.flight_capacity = parse_num(&value("--flight-capacity"), "--flight-capacity")
            }
            "--no-admission" => args.admission = false,
            "--no-recovery" => args.recovery = false,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad value {s:?} for {flag}\n\n{USAGE}");
        std::process::exit(2);
    })
}

fn main() {
    let args = parse_args();
    let shards = if args.shards == 0 {
        adamove::available_threads()
    } else {
        args.shards
    };

    // Seeded random init: serving behaviour is the subject here, and a
    // tiny embedding profile keeps 1M users ~16 MB of parameters.
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig::tiny(),
        args.locations,
        args.users,
        &mut rng,
    );
    // One flight-recorder ring shared by the server (request anomalies)
    // and the engine's tracer (shard panic/respawn events), so a DIAG
    // dump tells the whole story under one set of request ids.
    let recorder = Arc::new(FlightRecorder::new(args.flight_capacity));
    let engine = Arc::new(ShardedEngine::with_observability(
        Arc::new(model),
        Arc::new(store),
        EngineConfig {
            shards,
            recovery: if args.recovery {
                Some(RecoveryConfig {
                    supervise_interval: Some(Duration::from_millis(20)),
                    ..RecoveryConfig::default()
                })
            } else {
                None
            },
            ..EngineConfig::default()
        },
        None,
        Arc::new(Registry::new()),
        Tracer::with_sink(Arc::clone(&recorder) as _),
    ));

    let handle = serve(
        engine,
        ServeConfig {
            addr: args.addr.clone(),
            workers: args.workers,
            max_connections: args.max_conns,
            admission: args.admission.then(AdmissionConfig::default),
            flight_capacity: args.flight_capacity,
            flight_recorder: Some(Arc::clone(&recorder)),
            ..ServeConfig::default()
        },
    )
    .expect("failed to bind server");
    println!(
        "adamove_serve listening on {} ({} shards, {} users, {} locations, admission {}, recovery {})",
        handle.addr(),
        shards,
        args.users,
        args.locations,
        if args.admission { "on" } else { "off" },
        if args.recovery { "on" } else { "off" },
    );

    match args.duration_secs {
        Some(secs) => std::thread::sleep(Duration::from_secs(secs)),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    let engine = handle.stop();
    // Final flight dump on stdout: the same flat JSON a DIAG frame
    // fetches over the wire, for post-mortems after the socket is gone.
    println!("{}", recorder.to_flat_json());
    if let Some(engine) = Arc::into_inner(engine) {
        let report = engine.shutdown();
        println!(
            "served {} predictions across {} shards",
            report.predictions, shards
        );
    }
}
