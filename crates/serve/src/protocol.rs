//! The `adamove-serve` wire protocol: a small length-prefixed binary
//! framing with a versioned header and typed error replies.
//!
//! Every frame is `header ‖ payload`:
//!
//! ```text
//! offset  size  field
//! 0       2     magic      0xAD 0xA7
//! 2       1     version    currently 1
//! 3       1     frame type (see the constants on [`Frame`])
//! 4       4     payload length, u32 little-endian
//! 8       n     payload (layout per frame type)
//! ```
//!
//! All integers are little-endian; scores travel as raw `f32` bits, so a
//! prediction decoded on the client is **bit-identical** to the engine's
//! reply — the property the testkit's loopback differential oracle pins.
//!
//! Decoding is *total*: every byte sequence either yields a frame, asks
//! for more bytes ([`decode`] returns `Ok(None)`), or produces a typed
//! [`DecodeError`] that the server answers with an [`Frame::Error`] reply
//! before closing the connection. No input may panic — this module is on
//! the `adamove-lint` panic-free list.
//!
//! # Trace extension
//!
//! Any frame may carry a [`TraceContext`] as an *optional header
//! extension*: setting [`TRACE_FLAG`] in the type byte prefixes the
//! payload with 16 bytes — `request_id: u64` then `parent_id: u64`,
//! little-endian — before the type's normal layout. [`encode_traced`] /
//! [`decode_traced`] speak the extension; the plain [`encode`] /
//! [`decode`] delegate to them (never emitting the flag, surfacing a
//! traced frame's body while dropping its context), so untraced peers
//! and traced peers interoperate on the same port. A reply carries a
//! context iff the request did — the server echoes the request id back.

use adamove::PredictionQuality;
use adamove_obs::TraceContext;
use std::fmt;

/// Protocol magic, first two bytes of every frame.
pub const MAGIC: [u8; 2] = [0xAD, 0xA7];

/// Current protocol version.
pub const VERSION: u8 = 1;

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 8;

/// Default cap on payload length; longer frames are rejected with
/// [`ErrorCode::Oversized`] without buffering the body.
pub const DEFAULT_MAX_PAYLOAD: u32 = 1 << 20;

/// Type-byte flag marking the trace header extension: the payload is
/// prefixed with a 16-byte [`TraceContext`] (`request_id: u64` then
/// `parent_id: u64`, little-endian). No base frame type uses this bit,
/// so `ty & !TRACE_FLAG` recovers the frame type exactly.
pub const TRACE_FLAG: u8 = 0x10;

/// Byte length of the trace header extension.
pub const TRACE_PREFIX_LEN: usize = 16;

/// Frame type bytes. Requests are `0x0x`, replies `0x8x`, errors `0xE0`;
/// bit `0x10` is reserved for [`TRACE_FLAG`] and never part of a type.
pub mod frame_type {
    /// Check-in delivery (request).
    pub const OBSERVE: u8 = 0x01;
    /// Blocking prediction (request).
    pub const PREDICT: u8 = 0x02;
    /// Metrics snapshot (request).
    pub const SNAPSHOT: u8 = 0x03;
    /// Flight-recorder dump (request).
    pub const DIAG: u8 = 0x04;
    /// Observe accepted (reply).
    pub const OBSERVE_OK: u8 = 0x81;
    /// Prediction result (reply).
    pub const PREDICTION: u8 = 0x82;
    /// Predict for a user with no live window (reply).
    pub const NO_WINDOW: u8 = 0x83;
    /// Metrics snapshot body (reply).
    pub const SNAPSHOT_REPLY: u8 = 0x84;
    /// Flight-recorder dump body (reply).
    pub const DIAG_REPLY: u8 = 0x85;
    /// Typed failure (reply).
    pub const ERROR: u8 = 0xE0;
}

/// How a prediction's scores were produced, as a wire byte. Mirrors
/// [`PredictionQuality`] exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quality {
    /// Full PTTA adaptation (the normal path).
    Adapted,
    /// Circuit breaker open: frozen Θ classifier scores.
    Frozen,
    /// State lost with a shard: population-prior scores.
    Degraded,
}

impl Quality {
    fn to_byte(self) -> u8 {
        match self {
            Quality::Adapted => 0,
            Quality::Frozen => 1,
            Quality::Degraded => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(Quality::Adapted),
            1 => Some(Quality::Frozen),
            2 => Some(Quality::Degraded),
            _ => None,
        }
    }
}

impl From<PredictionQuality> for Quality {
    fn from(q: PredictionQuality) -> Self {
        match q {
            PredictionQuality::Adapted => Quality::Adapted,
            PredictionQuality::Frozen => Quality::Frozen,
            PredictionQuality::Degraded => Quality::Degraded,
        }
    }
}

/// Typed failure codes carried by [`Frame::Error`] replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Frame could not be parsed (bad magic / garbled payload). The
    /// server closes the connection after replying — the byte stream can
    /// no longer be re-synchronised.
    Malformed,
    /// Header carried an unsupported protocol version.
    BadVersion,
    /// Header carried an unknown frame type.
    UnknownFrame,
    /// Payload length exceeded the server's cap.
    Oversized,
    /// Admission control shed the request; retry after the carried hint.
    Shed,
    /// The owning shard is down and retries were exhausted.
    ShardDown,
    /// The owning shard did not reply within the server's bound.
    Timeout,
    /// The server is at its connection cap; retry after the hint.
    Busy,
    /// A reply-type frame arrived where a request was expected.
    Unexpected,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::BadVersion => 2,
            ErrorCode::UnknownFrame => 3,
            ErrorCode::Oversized => 4,
            ErrorCode::Shed => 5,
            ErrorCode::ShardDown => 6,
            ErrorCode::Timeout => 7,
            ErrorCode::Busy => 8,
            ErrorCode::Unexpected => 9,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(ErrorCode::Malformed),
            2 => Some(ErrorCode::BadVersion),
            3 => Some(ErrorCode::UnknownFrame),
            4 => Some(ErrorCode::Oversized),
            5 => Some(ErrorCode::Shed),
            6 => Some(ErrorCode::ShardDown),
            7 => Some(ErrorCode::Timeout),
            8 => Some(ErrorCode::Busy),
            9 => Some(ErrorCode::Unexpected),
            _ => None,
        }
    }

    /// Whether the client may retry the request on the same connection
    /// (load-shed / transient) rather than treating it as fatal.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Shed | ErrorCode::ShardDown | ErrorCode::Timeout | ErrorCode::Busy
        )
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::BadVersion => "bad-version",
            ErrorCode::UnknownFrame => "unknown-frame",
            ErrorCode::Oversized => "oversized",
            ErrorCode::Shed => "shed",
            ErrorCode::ShardDown => "shard-down",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Busy => "busy",
            ErrorCode::Unexpected => "unexpected",
        };
        f.write_str(name)
    }
}

/// One protocol frame — requests and replies share the enum so both ends
/// of the connection use the same codec (and the roundtrip property test
/// covers every variant).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Deliver a check-in: `user` visited location `loc` at `time`
    /// (seconds since the epoch, the engine's [`Timestamp`] convention).
    ///
    /// [`Timestamp`]: adamove_mobility::Timestamp
    Observe {
        /// User id.
        user: u32,
        /// Visited location id.
        loc: u32,
        /// Visit time, seconds.
        time: i64,
    },
    /// Request a prediction of `user`'s next location as of `now`.
    Predict {
        /// User id.
        user: u32,
        /// Query time, seconds.
        now: i64,
        /// When true the reply carries the dense score vector; when
        /// false only top-1 and window length (smaller reply, the
        /// loadgen default).
        want_scores: bool,
    },
    /// Request the server's metric registry as flat JSON.
    Snapshot,
    /// Request the server's flight-recorder ring as flat JSON.
    Diag,
    /// Observe accepted and enqueued on the owning shard.
    ObserveOk,
    /// Prediction result.
    Prediction {
        /// How the scores were produced.
        quality: Quality,
        /// Argmax location.
        top: u32,
        /// Number of window points the adaptation used.
        window_len: u32,
        /// Dense per-location scores; empty when the request set
        /// `want_scores = false`. Raw f32 bits — bit-exact roundtrip.
        scores: Vec<f32>,
    },
    /// The user has no live window at the query time.
    NoWindow,
    /// Metrics snapshot body (flat JSON).
    SnapshotReply {
        /// The exposition, UTF-8.
        json: String,
    },
    /// Flight-recorder dump body (flat JSON).
    DiagReply {
        /// The dump, UTF-8.
        json: String,
    },
    /// Typed failure.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Hint: milliseconds to back off before retrying (0 = no
        /// hint). Set on `Shed` and `Busy` replies.
        retry_after_ms: u32,
        /// Human-readable context.
        message: String,
    },
}

impl Frame {
    /// The frame's wire type byte.
    pub fn type_byte(&self) -> u8 {
        match self {
            Frame::Observe { .. } => frame_type::OBSERVE,
            Frame::Predict { .. } => frame_type::PREDICT,
            Frame::Snapshot => frame_type::SNAPSHOT,
            Frame::Diag => frame_type::DIAG,
            Frame::ObserveOk => frame_type::OBSERVE_OK,
            Frame::Prediction { .. } => frame_type::PREDICTION,
            Frame::NoWindow => frame_type::NO_WINDOW,
            Frame::SnapshotReply { .. } => frame_type::SNAPSHOT_REPLY,
            Frame::DiagReply { .. } => frame_type::DIAG_REPLY,
            Frame::Error { .. } => frame_type::ERROR,
        }
    }

    /// True for the request variants a server accepts.
    pub fn is_request(&self) -> bool {
        matches!(
            self,
            Frame::Observe { .. } | Frame::Predict { .. } | Frame::Snapshot | Frame::Diag
        )
    }
}

/// A frame that could not be decoded. `Incomplete` is *not* represented
/// here — [`decode`] signals it with `Ok(None)` so "wait for more bytes"
/// never takes the error path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The first two bytes were not [`MAGIC`].
    BadMagic([u8; 2]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown frame type byte.
    UnknownType(u8),
    /// Declared payload length exceeds the decoder's cap.
    Oversized {
        /// Declared length.
        len: u32,
        /// The cap in force.
        max: u32,
    },
    /// Payload bytes inconsistent with the frame type's layout.
    BadPayload {
        /// The offending frame type byte.
        frame: u8,
        /// What was wrong.
        reason: &'static str,
    },
}

impl DecodeError {
    /// The [`ErrorCode`] a server reply should carry for this failure.
    pub fn error_code(&self) -> ErrorCode {
        match self {
            DecodeError::BadMagic(_) => ErrorCode::Malformed,
            DecodeError::BadVersion(_) => ErrorCode::BadVersion,
            DecodeError::UnknownType(_) => ErrorCode::UnknownFrame,
            DecodeError::Oversized { .. } => ErrorCode::Oversized,
            DecodeError::BadPayload { .. } => ErrorCode::Malformed,
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::UnknownType(t) => write!(f, "unknown frame type 0x{t:02x}"),
            DecodeError::Oversized { len, max } => {
                write!(f, "payload length {len} exceeds cap {max}")
            }
            DecodeError::BadPayload { frame, reason } => {
                write!(f, "bad payload for frame 0x{frame:02x}: {reason}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append `frame` to `out` in wire format. Infallible: every [`Frame`]
/// value has exactly one encoding. Payloads that would overflow the
/// `u32` length field are truncated at the string/score level before
/// encoding is attempted (in practice only `SnapshotReply`/`Error`
/// messages could approach it; both are producer-bounded well below).
pub fn encode(frame: &Frame, out: &mut Vec<u8>) {
    encode_traced(frame, None, out);
}

/// [`encode`] with the trace header extension: when `trace` is `Some`,
/// the type byte carries [`TRACE_FLAG`] and the payload is prefixed with
/// the context. `encode_traced(f, None, out)` is byte-identical to
/// `encode(f, out)`.
pub fn encode_traced(frame: &Frame, trace: Option<TraceContext>, out: &mut Vec<u8>) {
    let header_at = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    let mut ty = frame.type_byte();
    if trace.is_some() {
        ty |= TRACE_FLAG;
    }
    out.push(ty);
    put_u32(out, 0); // patched below
    let payload_at = out.len();
    if let Some(ctx) = trace {
        put_u64(out, ctx.request_id);
        put_u64(out, ctx.parent_id);
    }
    match frame {
        Frame::Observe { user, loc, time } => {
            put_u32(out, *user);
            put_u32(out, *loc);
            put_i64(out, *time);
        }
        Frame::Predict {
            user,
            now,
            want_scores,
        } => {
            put_u32(out, *user);
            put_i64(out, *now);
            out.push(u8::from(*want_scores));
        }
        Frame::Snapshot | Frame::Diag | Frame::ObserveOk | Frame::NoWindow => {}
        Frame::Prediction {
            quality,
            top,
            window_len,
            scores,
        } => {
            out.push(quality.to_byte());
            put_u32(out, *top);
            put_u32(out, *window_len);
            let n = u32::try_from(scores.len()).unwrap_or(u32::MAX);
            put_u32(out, n);
            for s in scores.iter().take(n as usize) {
                out.extend_from_slice(&s.to_le_bytes());
            }
        }
        Frame::SnapshotReply { json } | Frame::DiagReply { json } => {
            out.extend_from_slice(json.as_bytes());
        }
        Frame::Error {
            code,
            retry_after_ms,
            message,
        } => {
            out.push(code.to_byte());
            put_u32(out, *retry_after_ms);
            let msg = message.as_bytes();
            let n = u16::try_from(msg.len()).unwrap_or(u16::MAX);
            put_u16(out, n);
            out.extend_from_slice(&msg[..n as usize]);
        }
    }
    let payload_len = (out.len() - payload_at) as u32;
    out[header_at + 4..header_at + 8].copy_from_slice(&payload_len.to_le_bytes());
}

/// Convenience: encode into a fresh buffer.
pub fn encode_to_vec(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + 16);
    encode(frame, &mut out);
    out
}

fn get_u16(b: &[u8], at: usize) -> Option<u16> {
    Some(u16::from_le_bytes(b.get(at..at + 2)?.try_into().ok()?))
}

fn get_u32(b: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(b.get(at..at + 4)?.try_into().ok()?))
}

fn get_i64(b: &[u8], at: usize) -> Option<i64> {
    Some(i64::from_le_bytes(b.get(at..at + 8)?.try_into().ok()?))
}

fn get_u64(b: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(b.get(at..at + 8)?.try_into().ok()?))
}

fn bad(frame: u8, reason: &'static str) -> DecodeError {
    DecodeError::BadPayload { frame, reason }
}

fn decode_payload(ty: u8, p: &[u8]) -> Result<Frame, DecodeError> {
    match ty {
        frame_type::OBSERVE => {
            if p.len() != 16 {
                return Err(bad(ty, "observe payload must be 16 bytes"));
            }
            Ok(Frame::Observe {
                user: get_u32(p, 0).ok_or_else(|| bad(ty, "short user"))?,
                loc: get_u32(p, 4).ok_or_else(|| bad(ty, "short loc"))?,
                time: get_i64(p, 8).ok_or_else(|| bad(ty, "short time"))?,
            })
        }
        frame_type::PREDICT => {
            if p.len() != 13 {
                return Err(bad(ty, "predict payload must be 13 bytes"));
            }
            let flags = p[12];
            if flags > 1 {
                return Err(bad(ty, "unknown predict flags"));
            }
            Ok(Frame::Predict {
                user: get_u32(p, 0).ok_or_else(|| bad(ty, "short user"))?,
                now: get_i64(p, 4).ok_or_else(|| bad(ty, "short now"))?,
                want_scores: flags == 1,
            })
        }
        frame_type::SNAPSHOT => {
            if !p.is_empty() {
                return Err(bad(ty, "snapshot carries no payload"));
            }
            Ok(Frame::Snapshot)
        }
        frame_type::DIAG => {
            if !p.is_empty() {
                return Err(bad(ty, "diag carries no payload"));
            }
            Ok(Frame::Diag)
        }
        frame_type::OBSERVE_OK => {
            if !p.is_empty() {
                return Err(bad(ty, "observe-ok carries no payload"));
            }
            Ok(Frame::ObserveOk)
        }
        frame_type::NO_WINDOW => {
            if !p.is_empty() {
                return Err(bad(ty, "no-window carries no payload"));
            }
            Ok(Frame::NoWindow)
        }
        frame_type::PREDICTION => {
            if p.len() < 13 {
                return Err(bad(ty, "prediction payload shorter than fixed part"));
            }
            let quality = Quality::from_byte(p[0]).ok_or_else(|| bad(ty, "unknown quality"))?;
            let top = get_u32(p, 1).ok_or_else(|| bad(ty, "short top"))?;
            let window_len = get_u32(p, 5).ok_or_else(|| bad(ty, "short window"))?;
            let n = get_u32(p, 9).ok_or_else(|| bad(ty, "short count"))? as usize;
            let Some(expect) = n.checked_mul(4).and_then(|b| b.checked_add(13)) else {
                return Err(bad(ty, "score count overflows"));
            };
            if p.len() != expect {
                return Err(bad(ty, "score bytes disagree with count"));
            }
            let mut scores = Vec::with_capacity(n);
            for i in 0..n {
                let at = 13 + i * 4;
                let Some(bytes) = p.get(at..at + 4).and_then(|b| <[u8; 4]>::try_from(b).ok())
                else {
                    return Err(bad(ty, "short score"));
                };
                scores.push(f32::from_le_bytes(bytes));
            }
            Ok(Frame::Prediction {
                quality,
                top,
                window_len,
                scores,
            })
        }
        frame_type::SNAPSHOT_REPLY => match std::str::from_utf8(p) {
            Ok(s) => Ok(Frame::SnapshotReply {
                json: s.to_string(),
            }),
            Err(_) => Err(bad(ty, "snapshot body is not UTF-8")),
        },
        frame_type::DIAG_REPLY => match std::str::from_utf8(p) {
            Ok(s) => Ok(Frame::DiagReply {
                json: s.to_string(),
            }),
            Err(_) => Err(bad(ty, "diag body is not UTF-8")),
        },
        frame_type::ERROR => {
            if p.len() < 7 {
                return Err(bad(ty, "error payload shorter than fixed part"));
            }
            let code = ErrorCode::from_byte(p[0]).ok_or_else(|| bad(ty, "unknown error code"))?;
            let retry_after_ms = get_u32(p, 1).ok_or_else(|| bad(ty, "short retry hint"))?;
            let n = get_u16(p, 5).ok_or_else(|| bad(ty, "short message length"))? as usize;
            if p.len() != 7 + n {
                return Err(bad(ty, "message bytes disagree with length"));
            }
            let message = match std::str::from_utf8(&p[7..]) {
                Ok(s) => s.to_string(),
                Err(_) => return Err(bad(ty, "message is not UTF-8")),
            };
            Ok(Frame::Error {
                code,
                retry_after_ms,
                message,
            })
        }
        other => Err(DecodeError::UnknownType(other)),
    }
}

/// Try to decode one frame from the front of `buf`.
///
/// - `Ok(Some((frame, consumed)))` — a complete frame; drop `consumed`
///   bytes from the buffer before the next call.
/// - `Ok(None)` — the buffer holds a valid prefix of a frame; read more.
/// - `Err(e)` — the stream is not a valid frame sequence. Header-level
///   errors (magic/version/type/length cap) are detected *before* the
///   payload arrives, so an attacker cannot make the server buffer an
///   oversized body by declaring a huge length.
pub fn decode(buf: &[u8], max_payload: u32) -> Result<Option<(Frame, usize)>, DecodeError> {
    Ok(decode_traced(buf, max_payload)?.map(|(frame, _, consumed)| (frame, consumed)))
}

/// [`decode`] with the trace header extension surfaced: when the frame's
/// type byte carries [`TRACE_FLAG`], the 16-byte context prefix is
/// stripped from the payload and returned alongside the frame.
pub fn decode_traced(
    buf: &[u8],
    max_payload: u32,
) -> Result<Option<(Frame, Option<TraceContext>, usize)>, DecodeError> {
    if buf.len() < 2 {
        // Even a magic check needs two bytes; but reject a wrong first
        // byte immediately so garbage fails fast.
        if buf.first().is_some_and(|&b| b != MAGIC[0]) {
            return Err(DecodeError::BadMagic([buf[0], 0]));
        }
        return Ok(None);
    }
    if buf[0] != MAGIC[0] || buf[1] != MAGIC[1] {
        return Err(DecodeError::BadMagic([buf[0], buf[1]]));
    }
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let version = buf[2];
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let raw_ty = buf[3];
    let traced = raw_ty & TRACE_FLAG != 0;
    let ty = raw_ty & !TRACE_FLAG;
    let known = matches!(
        ty,
        frame_type::OBSERVE
            | frame_type::PREDICT
            | frame_type::SNAPSHOT
            | frame_type::DIAG
            | frame_type::OBSERVE_OK
            | frame_type::PREDICTION
            | frame_type::NO_WINDOW
            | frame_type::SNAPSHOT_REPLY
            | frame_type::DIAG_REPLY
            | frame_type::ERROR
    );
    if !known {
        // Report the byte as received: an unknown traced type is just as
        // unknown with the flag stripped, and the raw value aids debugging.
        return Err(DecodeError::UnknownType(raw_ty));
    }
    let len = get_u32(buf, 4).unwrap_or(0);
    if len > max_payload {
        return Err(DecodeError::Oversized {
            len,
            max: max_payload,
        });
    }
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let mut payload = &buf[HEADER_LEN..total];
    let trace = if traced {
        if payload.len() < TRACE_PREFIX_LEN {
            return Err(bad(raw_ty, "traced payload shorter than trace prefix"));
        }
        let ctx = TraceContext {
            request_id: get_u64(payload, 0).unwrap_or(0),
            parent_id: get_u64(payload, 8).unwrap_or(0),
        };
        payload = &payload[TRACE_PREFIX_LEN..];
        Some(ctx)
    } else {
        None
    };
    let frame = decode_payload(ty, payload)?;
    Ok(Some((frame, trace, total)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = encode_to_vec(&f);
        let (back, consumed) = decode(&bytes, DEFAULT_MAX_PAYLOAD)
            .expect("decodes")
            .expect("complete");
        assert_eq!(consumed, bytes.len());
        assert_eq!(back, f);
    }

    #[test]
    fn every_variant_roundtrips() {
        roundtrip(Frame::Observe {
            user: 7,
            loc: 42,
            time: -3600,
        });
        roundtrip(Frame::Predict {
            user: u32::MAX,
            now: i64::MIN,
            want_scores: true,
        });
        roundtrip(Frame::Snapshot);
        roundtrip(Frame::ObserveOk);
        roundtrip(Frame::Prediction {
            quality: Quality::Degraded,
            top: 3,
            window_len: 9,
            scores: vec![0.0, -0.0, f32::NEG_INFINITY, 1.5e-39, 42.25],
        });
        roundtrip(Frame::NoWindow);
        roundtrip(Frame::SnapshotReply {
            json: "{\n  \"x\": 1\n}\n".into(),
        });
        roundtrip(Frame::Diag);
        roundtrip(Frame::DiagReply {
            json: "{\n  \"flight_capacity\": 64\n}\n".into(),
        });
        roundtrip(Frame::Error {
            code: ErrorCode::Shed,
            retry_after_ms: 50,
            message: "shard 3 overloaded".into(),
        });
    }

    #[test]
    fn traced_frames_roundtrip_with_context() {
        let ctx = TraceContext {
            request_id: 0xDEAD_BEEF_0042,
            parent_id: 7,
        };
        for f in [
            Frame::Predict {
                user: 3,
                now: 1_700_000_000,
                want_scores: false,
            },
            Frame::Observe {
                user: 1,
                loc: 2,
                time: 3,
            },
            Frame::Snapshot,
            Frame::Prediction {
                quality: Quality::Adapted,
                top: 5,
                window_len: 2,
                scores: vec![1.25, -0.5],
            },
            Frame::Error {
                code: ErrorCode::Shed,
                retry_after_ms: 50,
                message: "overload".into(),
            },
        ] {
            let mut bytes = Vec::new();
            encode_traced(&f, Some(ctx), &mut bytes);
            assert_eq!(bytes[3] & TRACE_FLAG, TRACE_FLAG);
            let (back, trace, consumed) = decode_traced(&bytes, DEFAULT_MAX_PAYLOAD)
                .expect("decodes")
                .expect("complete");
            assert_eq!(consumed, bytes.len());
            assert_eq!(back, f);
            assert_eq!(trace, Some(ctx));
            // The plain decoder accepts the same bytes, dropping context.
            let (plain, plain_used) = decode(&bytes, DEFAULT_MAX_PAYLOAD).unwrap().unwrap();
            assert_eq!(plain, f);
            assert_eq!(plain_used, consumed);
        }
    }

    #[test]
    fn untraced_encoding_is_unchanged_by_the_traced_codec() {
        let f = Frame::Predict {
            user: 9,
            now: 42,
            want_scores: true,
        };
        let plain = encode_to_vec(&f);
        let mut via_traced = Vec::new();
        encode_traced(&f, None, &mut via_traced);
        assert_eq!(plain, via_traced);
        let (back, trace, _) = decode_traced(&plain, DEFAULT_MAX_PAYLOAD).unwrap().unwrap();
        assert_eq!(back, f);
        assert_eq!(trace, None);
    }

    #[test]
    fn short_trace_prefix_is_a_typed_error() {
        let mut bytes = Vec::new();
        encode_traced(&Frame::Snapshot, Some(TraceContext::root(1)), &mut bytes);
        // Shrink the payload below the 16-byte trace prefix.
        bytes[4..8].copy_from_slice(&8u32.to_le_bytes());
        bytes.truncate(HEADER_LEN + 8);
        assert!(matches!(
            decode_traced(&bytes, DEFAULT_MAX_PAYLOAD),
            Err(DecodeError::BadPayload { .. })
        ));
    }

    #[test]
    fn nan_scores_roundtrip_bit_exact() {
        let weird = f32::from_bits(0x7fc0_1234); // a quiet NaN payload
        let f = Frame::Prediction {
            quality: Quality::Adapted,
            top: 0,
            window_len: 1,
            scores: vec![weird],
        };
        let bytes = encode_to_vec(&f);
        let (back, _) = decode(&bytes, DEFAULT_MAX_PAYLOAD).unwrap().unwrap();
        match back {
            Frame::Prediction { scores, .. } => {
                assert_eq!(scores[0].to_bits(), weird.to_bits());
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn incomplete_prefixes_ask_for_more() {
        let bytes = encode_to_vec(&Frame::Observe {
            user: 1,
            loc: 2,
            time: 3,
        });
        for cut in 0..bytes.len() {
            let r = decode(&bytes[..cut], DEFAULT_MAX_PAYLOAD);
            assert_eq!(r, Ok(None), "prefix of length {cut}");
        }
    }

    #[test]
    fn garbage_fails_with_typed_errors() {
        assert_eq!(
            decode(b"GET / HTTP/1.1\r\n", DEFAULT_MAX_PAYLOAD),
            Err(DecodeError::BadMagic([b'G', b'E']))
        );
        // A single wrong byte is enough to fail fast (second byte
        // unknown, reported as 0).
        assert_eq!(
            decode(b"G", DEFAULT_MAX_PAYLOAD),
            Err(DecodeError::BadMagic([b'G', 0]))
        );
        let mut v = encode_to_vec(&Frame::Snapshot);
        v[2] = 9;
        assert_eq!(
            decode(&v, DEFAULT_MAX_PAYLOAD),
            Err(DecodeError::BadVersion(9))
        );
        let mut v = encode_to_vec(&Frame::Snapshot);
        v[3] = 0x7f;
        assert_eq!(
            decode(&v, DEFAULT_MAX_PAYLOAD),
            Err(DecodeError::UnknownType(0x7f))
        );
        // Declared length over the cap fails before the body arrives.
        let mut v = encode_to_vec(&Frame::Snapshot);
        v[4..8].copy_from_slice(&(DEFAULT_MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            decode(&v, DEFAULT_MAX_PAYLOAD),
            Err(DecodeError::Oversized { .. })
        ));
        // Truncated-then-padded payload: length right, content wrong.
        let mut v = encode_to_vec(&Frame::Observe {
            user: 1,
            loc: 2,
            time: 3,
        });
        v[4..8].copy_from_slice(&4u32.to_le_bytes());
        v.truncate(HEADER_LEN + 4);
        assert!(matches!(
            decode(&v, DEFAULT_MAX_PAYLOAD),
            Err(DecodeError::BadPayload { .. })
        ));
    }

    #[test]
    fn pipelined_frames_decode_one_at_a_time() {
        let mut stream = Vec::new();
        encode(&Frame::ObserveOk, &mut stream);
        encode(&Frame::NoWindow, &mut stream);
        let (first, used) = decode(&stream, DEFAULT_MAX_PAYLOAD).unwrap().unwrap();
        assert_eq!(first, Frame::ObserveOk);
        let (second, used2) = decode(&stream[used..], DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .unwrap();
        assert_eq!(second, Frame::NoWindow);
        assert_eq!(used + used2, stream.len());
    }

    #[test]
    fn error_codes_roundtrip_and_classify() {
        for code in [
            ErrorCode::Malformed,
            ErrorCode::BadVersion,
            ErrorCode::UnknownFrame,
            ErrorCode::Oversized,
            ErrorCode::Shed,
            ErrorCode::ShardDown,
            ErrorCode::Timeout,
            ErrorCode::Busy,
            ErrorCode::Unexpected,
        ] {
            assert_eq!(ErrorCode::from_byte(code.to_byte()), Some(code));
            assert!(!code.to_string().is_empty());
        }
        assert!(ErrorCode::Shed.retryable());
        assert!(!ErrorCode::Malformed.retryable());
    }
}
