//! The thread-per-core TCP server: nonblocking accept loop, worker
//! threads owning disjoint connection sets, and an admission ticker
//! feeding engine signals into the shed policy.
//!
//! Concurrency model: one acceptor thread hands fresh sockets to `N`
//! worker threads round-robin over plain mpsc channels. Each worker owns
//! its connections outright — no shared connection state, no locks on
//! the request path — and pumps them in a loop: flush pending writes,
//! read, decode, handle. Engine calls block the worker briefly (predict
//! is ~100 µs–3 ms); with connections spread across workers this bounds
//! head-of-line blocking to one worker's share, which is the same
//! trade the engine's own per-shard FIFO makes.
//!
//! Fault transparency: engine calls go through the recovery layer's
//! transparent retry/heal, so a shard dying mid-connection surfaces as a
//! normal (possibly `Degraded`-quality) reply, not a dropped socket. The
//! only conditions that close a connection are client EOF, socket
//! errors, and malformed frames (after a typed error reply — a garbled
//! byte stream cannot be re-synchronised).
//!
//! # Tracing and the flight recorder
//!
//! Every request gets a [`TraceContext`]: either the one the client put
//! on the wire (the protocol's trace header extension — the reply then
//! echoes it) or one minted here from a process-wide counter. The
//! context rides *by value* through the engine's traced predict path, so
//! the serve-side stage timings (decode, admission, encode) and the
//! engine-side ones (queue-wait, forward, adapt) land under one request
//! id. Anomalous requests — shed, busy, degraded, breaker-frozen, typed
//! errors, or slower than the windowed p99 gate — are tail-sampled into
//! the always-on [`FlightRecorder`], dumpable over the wire with a DIAG
//! frame. A healthy request's recorder cost is one relaxed load and a
//! compare; tracing changes *nothing* about the reply bytes unless the
//! client opted in by sending a traced frame.
//!
//! This file is on the `adamove-lint` panic-free list.

use crate::admission::{AdmissionConfig, AdmissionController, Decision};
use crate::protocol::{self, ErrorCode, Frame, Quality};
use adamove::{EngineError, ShardedEngine};
use adamove_mobility::{LocationId, Point, Timestamp, UserId};
use adamove_obs::{
    labeled, to_flat_json, AnomalyKind, Counter, FlightRecord, FlightRecorder, Gauge, Histogram,
    Registry, Stage, StageTimings, Stopwatch, TraceContext, WindowedHistogram,
};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

/// Trailing windows retained for the flight recorder's slow gate: with
/// the default 20 ms tick this is a ~320 ms sliding view of
/// `serve_request_latency_ns`.
const SLOW_GATE_WINDOWS: usize = 16;

/// The slow gate stays shut (`u64::MAX`) until the trailing windows hold
/// at least this many requests — a p99 over a handful of samples is
/// noise, and an over-eager gate would flood the ring with healthy
/// requests.
const SLOW_GATE_MIN_SAMPLES: u64 = 64;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind; `"127.0.0.1:0"` (the default) picks a free
    /// loopback port, reported by [`ServerHandle::addr`].
    pub addr: String,
    /// Connection worker threads; `0` means one per available core.
    pub workers: usize,
    /// Open-connection cap; further accepts get a `Busy` reply and an
    /// immediate close.
    pub max_connections: usize,
    /// Per-frame payload cap forwarded to the protocol decoder.
    pub max_payload: u32,
    /// Shed policy; `None` disables admission control (every request is
    /// forwarded to the engine).
    pub admission: Option<AdmissionConfig>,
    /// Cadence of the admission ticker sampling engine signals.
    pub tick_interval: Duration,
    /// Sleep when a worker/acceptor finds no work (bounds idle spin).
    pub idle_sleep: Duration,
    /// Bound on each engine predict; `None` blocks until the shard
    /// replies (the recovery layer still bounds shard-death waits).
    pub predict_timeout: Option<Duration>,
    /// Flight-recorder ring capacity (records retained) when the server
    /// creates its own recorder. At least 1 — the recorder is always on.
    pub flight_capacity: usize,
    /// Share an existing recorder instead of creating one — e.g. the
    /// daemon wires the same ring into the engine's tracer so shard
    /// respawns and panics land next to request anomalies.
    pub flight_recorder: Option<Arc<FlightRecorder>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            max_connections: 1024,
            max_payload: protocol::DEFAULT_MAX_PAYLOAD,
            admission: Some(AdmissionConfig::default()),
            tick_interval: Duration::from_millis(20),
            idle_sleep: Duration::from_micros(200),
            predict_timeout: Some(Duration::from_secs(5)),
            flight_capacity: 64,
            flight_recorder: None,
        }
    }
}

/// Request-path metrics, registered in the engine's registry so one
/// SNAPSHOT frame (or one export) covers both layers.
#[derive(Clone)]
struct ServeObs {
    connections: Counter,
    conn_rejected: Counter,
    reject_write_errors: Counter,
    connections_open: Gauge,
    frames: Counter,
    observes: Counter,
    predicts: Counter,
    snapshots: Counter,
    diags: Counter,
    malformed: Counter,
    errors: Counter,
    request_latency: Histogram,
    stage_decode: Histogram,
    stage_admission: Histogram,
    stage_encode: Histogram,
}

impl ServeObs {
    fn new(registry: &Registry) -> Self {
        // The serve layer's slice of the request-stage taxonomy; the
        // engine records the queue_wait/forward/adapt/journal stages
        // into its own per-shard family.
        let stage = |st: Stage| labeled("serve_stage_latency_ns", &[("stage", st.name())]);
        let decode_name = stage(Stage::Decode);
        let admission_name = stage(Stage::Admission);
        let encode_name = stage(Stage::Encode);
        Self {
            connections: registry.counter("serve_connections_total"),
            conn_rejected: registry.counter("serve_conn_rejected_total"),
            reject_write_errors: registry.counter("serve_reject_write_errors_total"),
            connections_open: registry.gauge("serve_connections_open"),
            frames: registry.counter("serve_frames_total"),
            observes: registry.counter("serve_observes_total"),
            predicts: registry.counter("serve_predicts_total"),
            snapshots: registry.counter("serve_snapshots_total"),
            diags: registry.counter("serve_diags_total"),
            malformed: registry.counter("serve_malformed_total"),
            errors: registry.counter("serve_errors_total"),
            request_latency: registry.histogram("serve_request_latency_ns"),
            stage_decode: registry.histogram(&decode_name),
            stage_admission: registry.histogram(&admission_name),
            stage_encode: registry.histogram(&encode_name),
        }
    }
}

/// A running server. Dropping the handle WITHOUT calling
/// [`ServerHandle::stop`] leaves the threads running for the process
/// lifetime; `stop` is the orderly path.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    engine: Arc<ShardedEngine>,
    registry: Arc<Registry>,
    recorder: Arc<FlightRecorder>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port resolved).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared metric registry (engine + serve families).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// The engine behind the server.
    pub fn engine(&self) -> Arc<ShardedEngine> {
        Arc::clone(&self.engine)
    }

    /// The always-on flight recorder (anomalous-request ring). The same
    /// dump a DIAG frame fetches over the wire, readable in-process.
    pub fn flight_recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.recorder)
    }

    /// Stop accepting, drain worker loops, join all server threads, and
    /// hand back the engine (call `shutdown()` on it — via
    /// `Arc::into_inner` — for the final [`adamove::EngineReport`]).
    /// Open connections are closed; in-flight requests finish first
    /// because workers drain their pump loop before exiting.
    pub fn stop(mut self) -> Arc<ShardedEngine> {
        // ordering: publishes the stop intent; the Acquire loads in the
        // acceptor, workers and ticker see every write made before it.
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.engine
    }
}

/// Start serving `engine` per `config`. The server registers its
/// `serve_*` metrics in the engine's registry and spawns
/// `1 + workers + 1 ticker` threads.
pub fn serve(engine: Arc<ShardedEngine>, config: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let registry = Arc::clone(engine.registry());
    let obs = ServeObs::new(&registry);
    let admission = config
        .admission
        .clone()
        .map(|cfg| Arc::new(AdmissionController::new(engine.shards(), cfg, &registry)));
    let recorder = config
        .flight_recorder
        .clone()
        .unwrap_or_else(|| Arc::new(FlightRecorder::new(config.flight_capacity)));

    let stop = Arc::new(AtomicBool::new(false));
    let open = Arc::new(AtomicUsize::new(0));
    let request_ids = Arc::new(AtomicU64::new(1));
    let workers = if config.workers == 0 {
        thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        config.workers
    };

    let mut threads = Vec::with_capacity(workers + 2);
    let mut senders = Vec::with_capacity(workers);
    for w in 0..workers {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        senders.push(tx);
        let ctx = WorkerCtx {
            engine: Arc::clone(&engine),
            registry: Arc::clone(&registry),
            obs: obs.clone(),
            admission: admission.clone(),
            recorder: Arc::clone(&recorder),
            request_ids: Arc::clone(&request_ids),
            stop: Arc::clone(&stop),
            open: Arc::clone(&open),
            max_payload: config.max_payload,
            predict_timeout: config.predict_timeout,
            idle_sleep: config.idle_sleep,
        };
        threads.push(
            thread::Builder::new()
                .name(format!("serve-worker-{w}"))
                .spawn(move || worker_loop(rx, ctx))?,
        );
    }

    {
        let stop = Arc::clone(&stop);
        let open = Arc::clone(&open);
        let gate = AcceptGate {
            obs: obs.clone(),
            recorder: Arc::clone(&recorder),
            request_ids: Arc::clone(&request_ids),
            max_connections: config.max_connections,
        };
        let idle_sleep = config.idle_sleep;
        threads.push(
            thread::Builder::new()
                .name("serve-acceptor".to_string())
                .spawn(move || accept_loop(listener, senders, stop, open, gate, idle_sleep))?,
        );
    }

    {
        // Always spawned: even without admission control the ticker
        // maintains the flight recorder's windowed-p99 slow gate.
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let tick = config.tick_interval;
        let ctl = admission;
        let recorder = Arc::clone(&recorder);
        let request_latency = obs.request_latency.clone();
        threads.push(
            thread::Builder::new()
                .name("serve-ticker".to_string())
                .spawn(move || tick_loop(engine, ctl, recorder, request_latency, stop, tick))?,
        );
    }

    Ok(ServerHandle {
        addr,
        stop,
        engine,
        registry,
        recorder,
        threads,
    })
}

/// The acceptor's admission decision in one bundle: the connection cap
/// plus everything needed to refuse a peer accountably (counters and
/// the flight-recorder identity channel).
struct AcceptGate {
    obs: ServeObs,
    recorder: Arc<FlightRecorder>,
    request_ids: Arc<AtomicU64>,
    max_connections: usize,
}

fn accept_loop(
    listener: TcpListener,
    senders: Vec<mpsc::Sender<TcpStream>>,
    stop: Arc<AtomicBool>,
    open: Arc<AtomicUsize>,
    gate: AcceptGate,
    idle_sleep: Duration,
) {
    let obs = &gate.obs;
    let mut next = 0usize;
    // ordering: pairs with the Release store in stop().
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // ordering: pairs with the AcqRel claims/releases below
                // and in the workers — the count never misses a slot
                // another thread already claimed or freed.
                if open.load(Ordering::Acquire) >= gate.max_connections {
                    obs.conn_rejected.inc();
                    reject_busy(stream, obs, &gate.recorder, &gate.request_ids);
                    continue;
                }
                obs.connections.inc();
                // ordering: AcqRel slot claim — see the admission load.
                open.fetch_add(1, Ordering::AcqRel);
                obs.connections_open.inc();
                if senders.is_empty() || senders[next % senders.len()].send(stream).is_err() {
                    // Worker gone (only during shutdown races): undo.
                    // ordering: AcqRel slot release — see the admission load.
                    open.fetch_sub(1, Ordering::AcqRel);
                    obs.connections_open.dec();
                }
                next = next.wrapping_add(1);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(idle_sleep),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => thread::sleep(idle_sleep),
        }
    }
}

/// Best-effort Busy reply on a connection we will not keep: briefly
/// blocking so the frame actually leaves, then closed by drop.
///
/// The acceptor thread is the one resource a stalled peer must never
/// pin: if the write timeout cannot be armed, the reply is skipped
/// outright (an untimed `write_all` to a non-reading client would
/// wedge accepts fleet-wide), and a timed-out or failed reply is
/// counted and flight-recorded rather than silently dropped.
fn reject_busy(
    stream: TcpStream,
    obs: &ServeObs,
    recorder: &FlightRecorder,
    request_ids: &AtomicU64,
) {
    let mut stream = stream;
    let note = |op: &'static str| {
        obs.reject_write_errors.inc();
        let id = request_ids.fetch_add(1, Ordering::Relaxed);
        let mut record = FlightRecord::event(AnomalyKind::Busy, id, u64::MAX);
        record.op = op;
        recorder.record(record);
    };
    if stream
        .set_write_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        note("reject_timeout_unarmed");
        return;
    }
    let frame = Frame::Error {
        code: ErrorCode::Busy,
        retry_after_ms: 100,
        message: "connection limit reached".to_string(),
    };
    if stream.write_all(&protocol::encode_to_vec(&frame)).is_err() {
        note("reject_write_failed");
    }
}

/// The server's one periodic thread: per tick it cuts a delta window on
/// each shard's predict-latency histogram for the admission controller
/// (the [`WindowedHistogram`] promotion of the old hand-rolled snapshot
/// diffing), and rolls the request-latency window ring whose merged
/// trailing p99 arms the flight recorder's slow gate.
fn tick_loop(
    engine: Arc<ShardedEngine>,
    ctl: Option<Arc<AdmissionController>>,
    recorder: Arc<FlightRecorder>,
    request_latency: Histogram,
    stop: Arc<AtomicBool>,
    tick: Duration,
) {
    let shards = engine.shards();
    let shard_windows: Vec<WindowedHistogram> = (0..shards)
        .map(|s| {
            let source = engine.shard_predict_latency(s).unwrap_or_default();
            WindowedHistogram::around(source, 1)
        })
        .collect();
    let gate_window = WindowedHistogram::around(request_latency, SLOW_GATE_WINDOWS);
    // ordering: pairs with the Release store in stop().
    while !stop.load(Ordering::Acquire) {
        if let Some(ctl) = &ctl {
            for (shard, wh) in shard_windows.iter().enumerate() {
                let depth = engine
                    .shard_queue_depth(shard)
                    .map_or(0.0, |g| g.get())
                    .max(0.0) as usize;
                let window = wh.roll();
                ctl.ingest(shard, depth, &window);
            }
        }
        gate_window.roll();
        let trailing = gate_window.merged();
        if trailing.count >= SLOW_GATE_MIN_SAMPLES {
            recorder.set_slow_gate_ns(trailing.percentile(0.99) as u64);
        }
        // Sleep in short slices so stop() never has to wait out a long
        // tick before it can join this thread.
        let mut remaining = tick;
        // ordering: pairs with the Release store in stop().
        while !stop.load(Ordering::Acquire) && remaining > Duration::ZERO {
            let slice = remaining.min(Duration::from_millis(20));
            thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
}

struct WorkerCtx {
    engine: Arc<ShardedEngine>,
    registry: Arc<Registry>,
    obs: ServeObs,
    admission: Option<Arc<AdmissionController>>,
    recorder: Arc<FlightRecorder>,
    request_ids: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    open: Arc<AtomicUsize>,
    max_payload: u32,
    predict_timeout: Option<Duration>,
    idle_sleep: Duration,
}

struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// Flush `outbuf`, then close (set on malformed input / EOF).
    close_after_flush: bool,
}

enum Pump {
    /// Made progress (read bytes, wrote bytes, or handled a frame).
    Busy,
    /// Nothing to do right now.
    Idle,
    /// Connection finished or failed; remove it.
    Closed,
}

fn worker_loop(incoming: mpsc::Receiver<TcpStream>, ctx: WorkerCtx) {
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        // Adopt newly accepted sockets.
        loop {
            match incoming.try_recv() {
                Ok(stream) => {
                    if stream.set_nonblocking(true).is_ok() {
                        conns.push(Conn {
                            stream,
                            inbuf: Vec::with_capacity(1024),
                            outbuf: Vec::new(),
                            close_after_flush: false,
                        });
                    } else {
                        // ordering: AcqRel slot release — see the
                        // acceptor's admission load.
                        ctx.open.fetch_sub(1, Ordering::AcqRel);
                        ctx.obs.connections_open.dec();
                    }
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => break,
            }
        }
        // ordering: pairs with the Release store in stop().
        if ctx.stop.load(Ordering::Acquire) {
            // Orderly exit: flush what we can once, then drop sockets.
            for conn in &mut conns {
                let _ = flush_out(conn);
            }
            for _ in conns.drain(..) {
                // ordering: AcqRel slot release — see the acceptor's
                // admission load.
                ctx.open.fetch_sub(1, Ordering::AcqRel);
                ctx.obs.connections_open.dec();
            }
            return;
        }
        let mut any_busy = false;
        let mut i = 0;
        while i < conns.len() {
            match pump(&mut conns[i], &ctx) {
                Pump::Busy => {
                    any_busy = true;
                    i += 1;
                }
                Pump::Idle => i += 1,
                Pump::Closed => {
                    conns.swap_remove(i);
                    // ordering: AcqRel slot release — see the acceptor's
                    // admission load.
                    ctx.open.fetch_sub(1, Ordering::AcqRel);
                    ctx.obs.connections_open.dec();
                }
            }
        }
        if !any_busy {
            thread::sleep(ctx.idle_sleep);
        }
    }
}

/// Write as much of `outbuf` as the socket accepts. `Ok(true)` when the
/// buffer drained fully.
fn flush_out(conn: &mut Conn) -> io::Result<bool> {
    while !conn.outbuf.is_empty() {
        match conn.stream.write(&conn.outbuf) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                conn.outbuf.drain(..n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn pump(conn: &mut Conn, ctx: &WorkerCtx) -> Pump {
    // 1. Drain pending writes first — replies already computed.
    let drained = match flush_out(conn) {
        Ok(d) => d,
        Err(_) => return Pump::Closed,
    };
    if conn.close_after_flush {
        return if drained { Pump::Closed } else { Pump::Busy };
    }

    // 2. Read whatever the socket has.
    let mut chunk = [0u8; 4096];
    let mut read_any = false;
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                // Peer EOF: serve out buffered requests, then close.
                conn.close_after_flush = true;
                break;
            }
            Ok(n) => {
                conn.inbuf.extend_from_slice(&chunk[..n]);
                read_any = true;
                if n < chunk.len() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Pump::Closed,
        }
    }

    // 3. Decode and serve every complete frame in the buffer.
    let mut handled_any = false;
    loop {
        let clock = Stopwatch::start();
        match protocol::decode_traced(&conn.inbuf, ctx.max_payload) {
            Ok(Some((frame, wire_ctx, consumed))) => {
                let decode_ns = clock.elapsed_ns();
                conn.inbuf.drain(..consumed);
                handled_any = true;
                ctx.obs.frames.inc();
                // A client-supplied context is echoed; otherwise the
                // server mints a root id so engine spans and flight
                // records still correlate. Only client-traced requests
                // get the trace prefix on the reply — untraced wire
                // bytes are identical to the pre-trace protocol.
                let traced = wire_ctx.is_some();
                let trace = wire_ctx.unwrap_or_else(|| {
                    TraceContext::root(ctx.request_ids.fetch_add(1, Ordering::Relaxed))
                });
                let mut outcome = handle_frame(frame, trace, ctx);
                outcome.stages.set(Stage::Decode, decode_ns);
                ctx.obs.stage_decode.record(decode_ns);
                if matches!(outcome.reply, Frame::Error { .. }) {
                    ctx.obs.errors.inc();
                }
                let encode_clock = Stopwatch::start();
                protocol::encode_traced(&outcome.reply, traced.then_some(trace), &mut conn.outbuf);
                let encode_ns = encode_clock.elapsed_ns();
                outcome.stages.set(Stage::Encode, encode_ns);
                ctx.obs.stage_encode.record(encode_ns);
                let total_ns = clock.elapsed_ns();
                ctx.obs.request_latency.record(total_ns);
                if let Some(kind) = classify(&outcome.reply, total_ns, &ctx.recorder) {
                    ctx.recorder.record(FlightRecord {
                        ctx: trace,
                        kind,
                        op: outcome.op,
                        shard: outcome.shard,
                        total_ns,
                        stages: outcome.stages,
                    });
                }
            }
            Ok(None) => break,
            Err(err) => {
                // Typed error, then close: the stream cannot be re-synced.
                ctx.obs.malformed.inc();
                ctx.obs.errors.inc();
                let reply = Frame::Error {
                    code: err.error_code(),
                    retry_after_ms: 0,
                    message: err.to_string(),
                };
                protocol::encode(&reply, &mut conn.outbuf);
                let trace = TraceContext::root(ctx.request_ids.fetch_add(1, Ordering::Relaxed));
                let mut record =
                    FlightRecord::event(AnomalyKind::Error, trace.request_id, u64::MAX);
                record.op = "malformed";
                record.total_ns = clock.elapsed_ns();
                ctx.recorder.record(record);
                conn.inbuf.clear();
                conn.close_after_flush = true;
                handled_any = true;
                break;
            }
        }
    }
    if handled_any {
        match flush_out(conn) {
            Ok(true) if conn.close_after_flush => return Pump::Closed,
            Ok(_) => {}
            Err(_) => return Pump::Closed,
        }
    }
    if read_any || handled_any {
        Pump::Busy
    } else if conn.close_after_flush && conn.outbuf.is_empty() {
        Pump::Closed
    } else {
        Pump::Idle
    }
}

fn engine_error_reply(err: EngineError) -> Frame {
    let code = match err {
        EngineError::ShardDown { .. } => ErrorCode::ShardDown,
        EngineError::Timeout { .. } => ErrorCode::Timeout,
    };
    Frame::Error {
        code,
        retry_after_ms: 100,
        message: err.to_string(),
    }
}

/// What handling one request produced: the reply frame plus the
/// trace-facing metadata (per-stage timings, the operation label, and
/// the shard it hashed to — `u64::MAX` for shard-less ops).
struct RequestOutcome {
    reply: Frame,
    stages: StageTimings,
    op: &'static str,
    shard: u64,
}

impl RequestOutcome {
    fn new(reply: Frame, op: &'static str) -> Self {
        Self {
            reply,
            stages: StageTimings::default(),
            op,
            shard: u64::MAX,
        }
    }
}

/// Tail-sampling policy: which finished requests enter the flight
/// recorder. Anomalies by reply (shed / busy / typed error, degraded or
/// breaker-frozen prediction) always qualify; healthy replies qualify
/// only when slower than the recorder's windowed-p99 gate.
fn classify(reply: &Frame, total_ns: u64, recorder: &FlightRecorder) -> Option<AnomalyKind> {
    match reply {
        Frame::Error {
            code: ErrorCode::Shed,
            ..
        } => Some(AnomalyKind::Shed),
        Frame::Error {
            code: ErrorCode::Busy,
            ..
        } => Some(AnomalyKind::Busy),
        Frame::Error { .. } => Some(AnomalyKind::Error),
        Frame::Prediction {
            quality: Quality::Degraded,
            ..
        } => Some(AnomalyKind::Degraded),
        Frame::Prediction {
            quality: Quality::Frozen,
            ..
        } => Some(AnomalyKind::BreakerOpen),
        _ if recorder.is_slow(total_ns) => Some(AnomalyKind::SlowRequest),
        _ => None,
    }
}

/// Serve one decoded request frame. `trace` rides by value into the
/// engine's traced predict path so engine-side stage timings join this
/// request's span.
fn handle_frame(frame: Frame, trace: TraceContext, ctx: &WorkerCtx) -> RequestOutcome {
    match frame {
        Frame::Observe { user, loc, time } => {
            ctx.obs.observes.inc();
            let user = UserId(user);
            let shard = ctx.engine.shard_of(user) as u64;
            let mut out = match admission_gate(ctx, user, "overloaded, observe shed") {
                Err(shed) => shed,
                Ok(admission_ns) => {
                    let point = Point {
                        loc: LocationId(loc),
                        time: Timestamp(time),
                    };
                    let clock = Stopwatch::start();
                    let reply = match ctx.engine.try_observe(user, point) {
                        Ok(()) => Frame::ObserveOk,
                        Err(err) => engine_error_reply(err),
                    };
                    let mut o = RequestOutcome::new(reply, "observe");
                    o.stages.set(Stage::Admission, admission_ns);
                    o.stages.set(Stage::Journal, clock.elapsed_ns());
                    o
                }
            };
            out.op = "observe";
            out.shard = shard;
            out
        }
        Frame::Predict {
            user,
            now,
            want_scores,
        } => {
            ctx.obs.predicts.inc();
            let user = UserId(user);
            let shard = ctx.engine.shard_of(user) as u64;
            let mut out = match admission_gate(ctx, user, "overloaded, predict shed") {
                Err(shed) => shed,
                Ok(admission_ns) => {
                    let now = Timestamp(now);
                    let result =
                        ctx.engine
                            .predict_traced(user, now, ctx.predict_timeout, Some(trace));
                    let mut o = match result {
                        Ok((Some(p), stages)) => {
                            let reply = Frame::Prediction {
                                quality: p.quality.into(),
                                top: p.top.0,
                                window_len: p.window_len as u32,
                                scores: if want_scores { p.scores } else { Vec::new() },
                            };
                            let mut o = RequestOutcome::new(reply, "predict");
                            o.stages.set(Stage::QueueWait, stages.queue_ns);
                            o.stages.set(Stage::Forward, stages.forward_ns);
                            o.stages.set(Stage::Adapt, stages.adapt_ns);
                            o
                        }
                        Ok((None, stages)) => {
                            let mut o = RequestOutcome::new(Frame::NoWindow, "predict");
                            o.stages.set(Stage::QueueWait, stages.queue_ns);
                            o.stages.set(Stage::Forward, stages.forward_ns);
                            o
                        }
                        Err(err) => RequestOutcome::new(engine_error_reply(err), "predict"),
                    };
                    o.stages.set(Stage::Admission, admission_ns);
                    o
                }
            };
            out.op = "predict";
            out.shard = shard;
            out
        }
        Frame::Snapshot => {
            ctx.obs.snapshots.inc();
            RequestOutcome::new(
                Frame::SnapshotReply {
                    json: to_flat_json(&ctx.registry.snapshot()),
                },
                "snapshot",
            )
        }
        Frame::Diag => {
            ctx.obs.diags.inc();
            RequestOutcome::new(
                Frame::DiagReply {
                    json: ctx.recorder.to_flat_json(),
                },
                "diag",
            )
        }
        other => RequestOutcome::new(
            Frame::Error {
                code: ErrorCode::Unexpected,
                retry_after_ms: 0,
                message: format!("reply frame 0x{:02x} sent as a request", other.type_byte()),
            },
            "unexpected",
        ),
    }
}

/// Run the admission decision for `user`'s shard, timing it into the
/// `admission` stage histogram. `Ok` carries the stage nanoseconds of an
/// accepted request; `Err` is the full shed outcome.
fn admission_gate(ctx: &WorkerCtx, user: UserId, message: &str) -> Result<u64, RequestOutcome> {
    let Some(ctl) = ctx.admission.as_ref() else {
        return Ok(0);
    };
    let clock = Stopwatch::start();
    let decision = ctl.decide(ctx.engine.shard_of(user));
    let admission_ns = clock.elapsed_ns();
    ctx.obs.stage_admission.record(admission_ns);
    match decision {
        Decision::Shed { retry_after_ms } => {
            // op stays the request operation; the anomaly kind (not the
            // op) is what marks the record as a shed.
            let mut out = RequestOutcome::new(
                Frame::Error {
                    code: ErrorCode::Shed,
                    retry_after_ms,
                    message: message.to_string(),
                },
                "predict",
            );
            out.stages.set(Stage::Admission, admission_ns);
            Err(out)
        }
        Decision::Accept => Ok(admission_ns),
    }
}
