//! The thread-per-core TCP server: nonblocking accept loop, worker
//! threads owning disjoint connection sets, and an admission ticker
//! feeding engine signals into the shed policy.
//!
//! Concurrency model: one acceptor thread hands fresh sockets to `N`
//! worker threads round-robin over plain mpsc channels. Each worker owns
//! its connections outright — no shared connection state, no locks on
//! the request path — and pumps them in a loop: flush pending writes,
//! read, decode, handle. Engine calls block the worker briefly (predict
//! is ~100 µs–3 ms); with connections spread across workers this bounds
//! head-of-line blocking to one worker's share, which is the same
//! trade the engine's own per-shard FIFO makes.
//!
//! Fault transparency: engine calls go through the recovery layer's
//! transparent retry/heal, so a shard dying mid-connection surfaces as a
//! normal (possibly `Degraded`-quality) reply, not a dropped socket. The
//! only conditions that close a connection are client EOF, socket
//! errors, and malformed frames (after a typed error reply — a garbled
//! byte stream cannot be re-synchronised).
//!
//! This file is on the `adamove-lint` panic-free list.

use crate::admission::{window_delta, AdmissionConfig, AdmissionController, Decision};
use crate::protocol::{self, ErrorCode, Frame};
use adamove::{EngineError, ShardedEngine};
use adamove_mobility::{LocationId, Point, Timestamp, UserId};
use adamove_obs::{to_flat_json, Counter, Gauge, Histogram, Registry, Stopwatch};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind; `"127.0.0.1:0"` (the default) picks a free
    /// loopback port, reported by [`ServerHandle::addr`].
    pub addr: String,
    /// Connection worker threads; `0` means one per available core.
    pub workers: usize,
    /// Open-connection cap; further accepts get a `Busy` reply and an
    /// immediate close.
    pub max_connections: usize,
    /// Per-frame payload cap forwarded to the protocol decoder.
    pub max_payload: u32,
    /// Shed policy; `None` disables admission control (every request is
    /// forwarded to the engine).
    pub admission: Option<AdmissionConfig>,
    /// Cadence of the admission ticker sampling engine signals.
    pub tick_interval: Duration,
    /// Sleep when a worker/acceptor finds no work (bounds idle spin).
    pub idle_sleep: Duration,
    /// Bound on each engine predict; `None` blocks until the shard
    /// replies (the recovery layer still bounds shard-death waits).
    pub predict_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            max_connections: 1024,
            max_payload: protocol::DEFAULT_MAX_PAYLOAD,
            admission: Some(AdmissionConfig::default()),
            tick_interval: Duration::from_millis(20),
            idle_sleep: Duration::from_micros(200),
            predict_timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// Request-path metrics, registered in the engine's registry so one
/// SNAPSHOT frame (or one export) covers both layers.
#[derive(Clone)]
struct ServeObs {
    connections: Counter,
    conn_rejected: Counter,
    connections_open: Gauge,
    frames: Counter,
    observes: Counter,
    predicts: Counter,
    snapshots: Counter,
    malformed: Counter,
    errors: Counter,
    request_latency: Histogram,
}

impl ServeObs {
    fn new(registry: &Registry) -> Self {
        Self {
            connections: registry.counter("serve_connections_total"),
            conn_rejected: registry.counter("serve_conn_rejected_total"),
            connections_open: registry.gauge("serve_connections_open"),
            frames: registry.counter("serve_frames_total"),
            observes: registry.counter("serve_observes_total"),
            predicts: registry.counter("serve_predicts_total"),
            snapshots: registry.counter("serve_snapshots_total"),
            malformed: registry.counter("serve_malformed_total"),
            errors: registry.counter("serve_errors_total"),
            request_latency: registry.histogram("serve_request_latency_ns"),
        }
    }
}

/// A running server. Dropping the handle WITHOUT calling
/// [`ServerHandle::stop`] leaves the threads running for the process
/// lifetime; `stop` is the orderly path.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    engine: Arc<ShardedEngine>,
    registry: Arc<Registry>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port resolved).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared metric registry (engine + serve families).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// The engine behind the server.
    pub fn engine(&self) -> Arc<ShardedEngine> {
        Arc::clone(&self.engine)
    }

    /// Stop accepting, drain worker loops, join all server threads, and
    /// hand back the engine (call `shutdown()` on it — via
    /// `Arc::into_inner` — for the final [`adamove::EngineReport`]).
    /// Open connections are closed; in-flight requests finish first
    /// because workers drain their pump loop before exiting.
    pub fn stop(mut self) -> Arc<ShardedEngine> {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.engine
    }
}

/// Start serving `engine` per `config`. The server registers its
/// `serve_*` metrics in the engine's registry and spawns
/// `1 + workers (+ 1 admission ticker)` threads.
pub fn serve(engine: Arc<ShardedEngine>, config: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let registry = Arc::clone(engine.registry());
    let obs = ServeObs::new(&registry);
    let admission = config
        .admission
        .clone()
        .map(|cfg| Arc::new(AdmissionController::new(engine.shards(), cfg, &registry)));

    let stop = Arc::new(AtomicBool::new(false));
    let open = Arc::new(AtomicUsize::new(0));
    let workers = if config.workers == 0 {
        thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        config.workers
    };

    let mut threads = Vec::with_capacity(workers + 2);
    let mut senders = Vec::with_capacity(workers);
    for w in 0..workers {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        senders.push(tx);
        let ctx = WorkerCtx {
            engine: Arc::clone(&engine),
            registry: Arc::clone(&registry),
            obs: obs.clone(),
            admission: admission.clone(),
            stop: Arc::clone(&stop),
            open: Arc::clone(&open),
            max_payload: config.max_payload,
            predict_timeout: config.predict_timeout,
            idle_sleep: config.idle_sleep,
        };
        threads.push(
            thread::Builder::new()
                .name(format!("serve-worker-{w}"))
                .spawn(move || worker_loop(rx, ctx))?,
        );
    }

    {
        let stop = Arc::clone(&stop);
        let open = Arc::clone(&open);
        let obs = obs.clone();
        let max_connections = config.max_connections;
        let idle_sleep = config.idle_sleep;
        threads.push(
            thread::Builder::new()
                .name("serve-acceptor".to_string())
                .spawn(move || {
                    accept_loop(
                        listener,
                        senders,
                        stop,
                        open,
                        obs,
                        max_connections,
                        idle_sleep,
                    )
                })?,
        );
    }

    if let Some(ctl) = admission {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let tick = config.tick_interval;
        threads.push(
            thread::Builder::new()
                .name("serve-admission".to_string())
                .spawn(move || admission_tick_loop(engine, ctl, stop, tick))?,
        );
    }

    Ok(ServerHandle {
        addr,
        stop,
        engine,
        registry,
        threads,
    })
}

fn accept_loop(
    listener: TcpListener,
    senders: Vec<mpsc::Sender<TcpStream>>,
    stop: Arc<AtomicBool>,
    open: Arc<AtomicUsize>,
    obs: ServeObs,
    max_connections: usize,
    idle_sleep: Duration,
) {
    let mut next = 0usize;
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if open.load(Ordering::Acquire) >= max_connections {
                    obs.conn_rejected.inc();
                    reject_busy(stream);
                    continue;
                }
                obs.connections.inc();
                open.fetch_add(1, Ordering::AcqRel);
                obs.connections_open.inc();
                if senders.is_empty() || senders[next % senders.len()].send(stream).is_err() {
                    // Worker gone (only during shutdown races): undo.
                    open.fetch_sub(1, Ordering::AcqRel);
                    obs.connections_open.dec();
                }
                next = next.wrapping_add(1);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(idle_sleep),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => thread::sleep(idle_sleep),
        }
    }
}

/// Best-effort Busy reply on a connection we will not keep: briefly
/// blocking so the frame actually leaves, then closed by drop.
fn reject_busy(stream: TcpStream) {
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let frame = Frame::Error {
        code: ErrorCode::Busy,
        retry_after_ms: 100,
        message: "connection limit reached".to_string(),
    };
    let _ = stream.write_all(&protocol::encode_to_vec(&frame));
}

fn admission_tick_loop(
    engine: Arc<ShardedEngine>,
    ctl: Arc<AdmissionController>,
    stop: Arc<AtomicBool>,
    tick: Duration,
) {
    let shards = engine.shards();
    let mut last: Vec<adamove_obs::HistogramSnapshot> = (0..shards)
        .map(|s| {
            engine
                .shard_predict_latency(s)
                .map_or_else(adamove_obs::HistogramSnapshot::empty, |h| h.snapshot())
        })
        .collect();
    while !stop.load(Ordering::Acquire) {
        for (shard, last_snap) in last.iter_mut().enumerate() {
            let depth = engine
                .shard_queue_depth(shard)
                .map_or(0.0, |g| g.get())
                .max(0.0) as usize;
            let current = engine
                .shard_predict_latency(shard)
                .map_or_else(adamove_obs::HistogramSnapshot::empty, |h| h.snapshot());
            let window = window_delta(&current, last_snap);
            *last_snap = current;
            ctl.ingest(shard, depth, &window);
        }
        thread::sleep(tick);
    }
}

struct WorkerCtx {
    engine: Arc<ShardedEngine>,
    registry: Arc<Registry>,
    obs: ServeObs,
    admission: Option<Arc<AdmissionController>>,
    stop: Arc<AtomicBool>,
    open: Arc<AtomicUsize>,
    max_payload: u32,
    predict_timeout: Option<Duration>,
    idle_sleep: Duration,
}

struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// Flush `outbuf`, then close (set on malformed input / EOF).
    close_after_flush: bool,
}

enum Pump {
    /// Made progress (read bytes, wrote bytes, or handled a frame).
    Busy,
    /// Nothing to do right now.
    Idle,
    /// Connection finished or failed; remove it.
    Closed,
}

fn worker_loop(incoming: mpsc::Receiver<TcpStream>, ctx: WorkerCtx) {
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        // Adopt newly accepted sockets.
        loop {
            match incoming.try_recv() {
                Ok(stream) => {
                    if stream.set_nonblocking(true).is_ok() {
                        conns.push(Conn {
                            stream,
                            inbuf: Vec::with_capacity(1024),
                            outbuf: Vec::new(),
                            close_after_flush: false,
                        });
                    } else {
                        ctx.open.fetch_sub(1, Ordering::AcqRel);
                        ctx.obs.connections_open.dec();
                    }
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => break,
            }
        }
        if ctx.stop.load(Ordering::Acquire) {
            // Orderly exit: flush what we can once, then drop sockets.
            for conn in &mut conns {
                let _ = flush_out(conn);
            }
            for _ in conns.drain(..) {
                ctx.open.fetch_sub(1, Ordering::AcqRel);
                ctx.obs.connections_open.dec();
            }
            return;
        }
        let mut any_busy = false;
        let mut i = 0;
        while i < conns.len() {
            match pump(&mut conns[i], &ctx) {
                Pump::Busy => {
                    any_busy = true;
                    i += 1;
                }
                Pump::Idle => i += 1,
                Pump::Closed => {
                    conns.swap_remove(i);
                    ctx.open.fetch_sub(1, Ordering::AcqRel);
                    ctx.obs.connections_open.dec();
                }
            }
        }
        if !any_busy {
            thread::sleep(ctx.idle_sleep);
        }
    }
}

/// Write as much of `outbuf` as the socket accepts. `Ok(true)` when the
/// buffer drained fully.
fn flush_out(conn: &mut Conn) -> io::Result<bool> {
    while !conn.outbuf.is_empty() {
        match conn.stream.write(&conn.outbuf) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                conn.outbuf.drain(..n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn pump(conn: &mut Conn, ctx: &WorkerCtx) -> Pump {
    // 1. Drain pending writes first — replies already computed.
    let drained = match flush_out(conn) {
        Ok(d) => d,
        Err(_) => return Pump::Closed,
    };
    if conn.close_after_flush {
        return if drained { Pump::Closed } else { Pump::Busy };
    }

    // 2. Read whatever the socket has.
    let mut chunk = [0u8; 4096];
    let mut read_any = false;
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                // Peer EOF: serve out buffered requests, then close.
                conn.close_after_flush = true;
                break;
            }
            Ok(n) => {
                conn.inbuf.extend_from_slice(&chunk[..n]);
                read_any = true;
                if n < chunk.len() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Pump::Closed,
        }
    }

    // 3. Decode and serve every complete frame in the buffer.
    let mut handled_any = false;
    loop {
        match protocol::decode(&conn.inbuf, ctx.max_payload) {
            Ok(Some((frame, consumed))) => {
                conn.inbuf.drain(..consumed);
                handled_any = true;
                ctx.obs.frames.inc();
                let clock = Stopwatch::start();
                let reply = handle_frame(frame, ctx);
                ctx.obs.request_latency.record(clock.elapsed_ns());
                if matches!(reply, Frame::Error { .. }) {
                    ctx.obs.errors.inc();
                }
                protocol::encode(&reply, &mut conn.outbuf);
            }
            Ok(None) => break,
            Err(err) => {
                // Typed error, then close: the stream cannot be re-synced.
                ctx.obs.malformed.inc();
                ctx.obs.errors.inc();
                let reply = Frame::Error {
                    code: err.error_code(),
                    retry_after_ms: 0,
                    message: err.to_string(),
                };
                protocol::encode(&reply, &mut conn.outbuf);
                conn.inbuf.clear();
                conn.close_after_flush = true;
                handled_any = true;
                break;
            }
        }
    }
    if handled_any {
        match flush_out(conn) {
            Ok(true) if conn.close_after_flush => return Pump::Closed,
            Ok(_) => {}
            Err(_) => return Pump::Closed,
        }
    }
    if read_any || handled_any {
        Pump::Busy
    } else if conn.close_after_flush && conn.outbuf.is_empty() {
        Pump::Closed
    } else {
        Pump::Idle
    }
}

fn engine_error_reply(err: EngineError) -> Frame {
    let code = match err {
        EngineError::ShardDown { .. } => ErrorCode::ShardDown,
        EngineError::Timeout { .. } => ErrorCode::Timeout,
    };
    Frame::Error {
        code,
        retry_after_ms: 100,
        message: err.to_string(),
    }
}

fn handle_frame(frame: Frame, ctx: &WorkerCtx) -> Frame {
    match frame {
        Frame::Observe { user, loc, time } => {
            ctx.obs.observes.inc();
            let user = UserId(user);
            if let Some(ctl) = &ctx.admission {
                if let Decision::Shed { retry_after_ms } = ctl.decide(ctx.engine.shard_of(user)) {
                    return Frame::Error {
                        code: ErrorCode::Shed,
                        retry_after_ms,
                        message: "overloaded, observe shed".to_string(),
                    };
                }
            }
            let point = Point {
                loc: LocationId(loc),
                time: Timestamp(time),
            };
            match ctx.engine.try_observe(user, point) {
                Ok(()) => Frame::ObserveOk,
                Err(err) => engine_error_reply(err),
            }
        }
        Frame::Predict {
            user,
            now,
            want_scores,
        } => {
            ctx.obs.predicts.inc();
            let user = UserId(user);
            if let Some(ctl) = &ctx.admission {
                if let Decision::Shed { retry_after_ms } = ctl.decide(ctx.engine.shard_of(user)) {
                    return Frame::Error {
                        code: ErrorCode::Shed,
                        retry_after_ms,
                        message: "overloaded, predict shed".to_string(),
                    };
                }
            }
            let now = Timestamp(now);
            let result = match ctx.predict_timeout {
                Some(t) => ctx.engine.predict_timeout(user, now, t),
                None => ctx.engine.try_predict(user, now),
            };
            match result {
                Ok(Some(p)) => Frame::Prediction {
                    quality: p.quality.into(),
                    top: p.top.0,
                    window_len: p.window_len as u32,
                    scores: if want_scores { p.scores } else { Vec::new() },
                },
                Ok(None) => Frame::NoWindow,
                Err(err) => engine_error_reply(err),
            }
        }
        Frame::Snapshot => {
            ctx.obs.snapshots.inc();
            Frame::SnapshotReply {
                json: to_flat_json(&ctx.registry.snapshot()),
            }
        }
        other => Frame::Error {
            code: ErrorCode::Unexpected,
            retry_after_ms: 0,
            message: format!("reply frame 0x{:02x} sent as a request", other.type_byte()),
        },
    }
}
