//! Manual overhead measurement backing the "zero overhead when off"
//! claim in DESIGN.md §19. Run with:
//!
//! ```text
//! cargo test --release -p adamove-obs --test overhead -- --ignored --nocapture
//! ```
//!
//! The numbers printed are ns/op for (a) an `event!` against a disabled
//! tracer — the cost every un-instrumented caller pays, which must stay
//! at a branch-on-Option, (b) a counter increment, (c) a histogram
//! record — the costs paid only when telemetry is actually on.

use adamove_obs::{event, Counter, FlightRecorder, Histogram, RingSink, Tracer};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const ITERS: u64 = 20_000_000;

fn measure(label: &str, mut f: impl FnMut(u64)) -> f64 {
    // One warmup pass, then the timed pass.
    for i in 0..ITERS / 10 {
        f(black_box(i));
    }
    let t0 = Instant::now();
    for i in 0..ITERS {
        f(black_box(i));
    }
    let ns = t0.elapsed().as_nanos() as f64 / ITERS as f64;
    println!("{label:<32} {ns:.2} ns/op");
    ns
}

#[test]
#[ignore = "manual measurement: cargo test --release -- --ignored --nocapture"]
fn disabled_instrumentation_costs_a_branch() {
    let baseline = measure("bare loop", |i| {
        black_box(i.wrapping_mul(0x9E3779B97F4A7C15));
    });

    let noop = Tracer::noop();
    let disabled = measure("event! (tracer off)", |i| {
        black_box(i.wrapping_mul(0x9E3779B97F4A7C15));
        event!(noop, "tick", i = i);
    });

    let ring = Tracer::with_sink(Arc::new(RingSink::new(8)));
    measure("event! (ring sink)", |i| {
        black_box(i.wrapping_mul(0x9E3779B97F4A7C15));
        event!(ring, "tick", i = i);
    });

    let c = Counter::new();
    measure("counter.inc()", |i| {
        black_box(i.wrapping_mul(0x9E3779B97F4A7C15));
        c.inc();
    });

    let h = Histogram::new();
    measure("histogram.record()", |i| {
        black_box(i.wrapping_mul(0x9E3779B97F4A7C15));
        h.record(1 + i % 1_000_000);
    });

    // The claim: a disabled event! adds at most ~2ns (one predictable
    // branch) over the bare loop on any machine this runs on.
    println!(
        "disabled-tracer overhead: {:.2} ns/op over baseline",
        disabled - baseline
    );
    assert!(
        disabled - baseline < 5.0,
        "disabled event! cost {:.2} ns/op over baseline — not 'zero overhead when off'",
        disabled - baseline
    );
}

/// The flight recorder is always on, so the cost a *healthy* request
/// pays is exactly one `is_slow` check: a relaxed load and a compare.
/// Recording itself (the anomalous path) is measured alongside for
/// context but not pinned — anomalies are rare by construction.
#[test]
#[ignore = "manual measurement: cargo test --release -- --ignored --nocapture"]
fn flight_recorder_off_path_is_a_load_and_compare() {
    let baseline = measure("bare loop", |i| {
        black_box(i.wrapping_mul(0x9E3779B97F4A7C15));
    });

    let recorder = FlightRecorder::new(64);
    // Gate shut (the steady state before the ticker publishes a p99):
    // nothing is ever slow, which is the common healthy-server case.
    let shut = measure("is_slow (gate shut)", |i| {
        black_box(i.wrapping_mul(0x9E3779B97F4A7C15));
        black_box(recorder.is_slow(black_box(i)));
    });

    // Gate armed at a realistic p99: same cost — the branch outcome
    // changes, the instruction stream does not.
    recorder.set_slow_gate_ns(1_000_000);
    let armed = measure("is_slow (gate armed)", |i| {
        black_box(i.wrapping_mul(0x9E3779B97F4A7C15));
        black_box(recorder.is_slow(black_box(i % 2_000_000)));
    });

    println!(
        "off-path overhead: shut {:.2} ns/op, armed {:.2} ns/op over baseline",
        shut - baseline,
        armed - baseline
    );
    assert!(
        shut - baseline < 5.0 && armed - baseline < 5.0,
        "is_slow cost (shut {:.2}, armed {:.2} ns/op over baseline) — the \
         always-on recorder must stay off the healthy hot path",
        shut - baseline,
        armed - baseline
    );
}

/// The adamove-verify sync shims this crate is built on must compile
/// to the bare std operations in production (the cfg-off passthrough
/// path): a shimmed relaxed `fetch_add` costs the same as a raw
/// `std::sync::atomic` one, and a shimmed uncontended lock the same as
/// a raw `std::sync::Mutex` lock. Anything above noise here means the
/// wrappers stopped inlining.
#[test]
#[ignore = "manual measurement: cargo test --release -- --ignored --nocapture"]
fn verify_shims_are_zero_overhead_in_production() {
    let raw_cell = std::sync::atomic::AtomicU64::new(0);
    let raw_atomic = measure("std fetch_add", |i| {
        black_box(i.wrapping_mul(0x9E3779B97F4A7C15));
        raw_cell.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    });

    let shim_cell = adamove_verify::sync::AtomicU64::new(0);
    let shim_atomic = measure("shim fetch_add", |i| {
        black_box(i.wrapping_mul(0x9E3779B97F4A7C15));
        shim_cell.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    });

    let raw_mutex = std::sync::Mutex::new(0u64);
    let raw_lock = measure("std mutex lock", |i| {
        black_box(i.wrapping_mul(0x9E3779B97F4A7C15));
        *raw_mutex.lock().unwrap_or_else(|p| p.into_inner()) += 1;
    });

    let shim_mutex = adamove_verify::sync::Mutex::new(0u64);
    let shim_lock = measure("shim mutex lock", |i| {
        black_box(i.wrapping_mul(0x9E3779B97F4A7C15));
        *shim_mutex.lock() += 1;
    });

    println!(
        "shim overhead: atomic {:+.2} ns/op, mutex {:+.2} ns/op",
        shim_atomic - raw_atomic,
        shim_lock - raw_lock
    );
    assert!(
        shim_atomic - raw_atomic < 5.0,
        "shimmed fetch_add costs {:.2} ns/op over std — passthrough stopped inlining",
        shim_atomic - raw_atomic
    );
    assert!(
        shim_lock - raw_lock < 5.0,
        "shimmed lock costs {:.2} ns/op over std — passthrough stopped inlining",
        shim_lock - raw_lock
    );
}
