//! Correctness suite for the lock-free metric registry: concurrent
//! recording must lose nothing (counts are exact integers), histogram
//! percentiles must bracket the data they summarise, and snapshot
//! merging must obey the same laws as `MetricAccumulator` merging —
//! any partition of a stream, merged in any order, equals one
//! sequential pass bit for bit.

use adamove_obs::{Histogram, HistogramSnapshot, Registry, BUCKET_BOUNDS};
use proptest::prelude::*;
use std::sync::Arc;
use std::thread;

/// Deterministic value stream without external RNG deps: an LCG over the
/// histogram's dynamic range (1ns .. ~0.5s).
fn stream(n: usize, seed: u64) -> Vec<u64> {
    let mut state = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            1 + (state >> 16) % 500_000_000
        })
        .collect()
}

fn record_all(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

#[test]
fn eight_threads_of_increments_lose_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;

    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                // Every thread hammers the SAME counter, gauge and
                // histogram handles — contention is the point.
                let c = registry.counter("laws_counter");
                let g = registry.gauge("laws_gauge");
                let h = registry.histogram("laws_hist");
                for i in 0..PER_THREAD {
                    c.inc();
                    g.add(1.0);
                    h.record(1 + (t as u64 * PER_THREAD + i) % 1000);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    let total = THREADS as u64 * PER_THREAD;
    let snap = registry.snapshot();
    assert_eq!(snap.counters["laws_counter"], total);
    // The gauge's CAS-loop add must also be lossless (each add is +1.0,
    // exactly representable, so the float sum is exact too).
    assert_eq!(snap.gauges["laws_gauge"], total as f64);
    let h = &snap.histograms["laws_hist"];
    assert_eq!(h.count, total);
    assert_eq!(
        h.counts.iter().sum::<u64>(),
        total,
        "bucket totals must equal the recorded count"
    );
}

#[test]
fn percentiles_bracket_the_recorded_data() {
    // Values spanning several decades. Percentiles interpolate on rank
    // inside the holding bucket, so every reported percentile must fall
    // within the `(lower, upper]` bucket of the true nearest-rank value
    // and be monotone in q.
    let values = stream(10_000, 7);
    let snap = record_all(&values);

    let mut sorted = values.clone();
    sorted.sort_unstable();
    for q in [0.0, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0] {
        let p = snap.percentile(q);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        let true_value = sorted[rank];
        let idx = BUCKET_BOUNDS.partition_point(|&b| b < true_value);
        let upper = BUCKET_BOUNDS[idx.min(BUCKET_BOUNDS.len() - 1)] as f64;
        let lower = if idx == 0 {
            0.0
        } else {
            BUCKET_BOUNDS[idx - 1] as f64
        };
        assert!(
            p > lower && p <= upper,
            "p{q} = {p} outside the ({lower}, {upper}] bucket of nearest-rank value {true_value}"
        );
    }
    // Monotone in q.
    let ps: Vec<f64> = [0.1, 0.25, 0.5, 0.9, 0.99, 1.0]
        .iter()
        .map(|&q| snap.percentile(q))
        .collect();
    assert!(
        ps.windows(2).all(|w| w[0] <= w[1]),
        "percentiles not monotone: {ps:?}"
    );
    // Mean is exact (integer sum / integer count).
    let exact_mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
    assert!((snap.mean() - exact_mean).abs() < 1e-6);
}

#[test]
fn overflow_values_saturate_to_the_last_bucket() {
    let h = Histogram::new();
    h.record(u64::MAX);
    h.record(0);
    let snap = h.snapshot();
    assert_eq!(snap.count, 2);
    // The overflow percentile reports the largest finite bound rather
    // than inventing a value beyond the instrument's range.
    assert_eq!(snap.percentile(1.0), *BUCKET_BOUNDS.last().unwrap() as f64);
    assert_eq!(snap.percentile(0.0), BUCKET_BOUNDS[0] as f64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram-snapshot merging obeys the accumulator merge laws:
    /// any partition of any stream into up to 8 partials, merged in any
    /// rotation, equals recording the whole stream sequentially.
    #[test]
    fn random_partitions_merge_exactly(
        n in 1usize..200,
        seed in 0u64..1000,
        cuts in proptest::collection::vec(0usize..200, 0..7),
        rotate in 0usize..8,
    ) {
        let values = stream(n, seed);
        let sequential = record_all(&values);

        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (n + 1)).collect();
        bounds.push(0);
        bounds.push(n);
        bounds.sort_unstable();
        let partials: Vec<HistogramSnapshot> = bounds
            .windows(2)
            .map(|w| record_all(&values[w[0]..w[1]])) // empty when w[0] == w[1]
            .collect();

        let mut order: Vec<usize> = (0..partials.len()).collect();
        order.rotate_left(rotate % partials.len().max(1));
        let mut merged = HistogramSnapshot::default();
        for &i in &order {
            merged.merge(&partials[i]);
        }
        prop_assert_eq!(&merged.counts[..], &sequential.counts[..]);
        prop_assert_eq!(merged.sum, sequential.sum);
        prop_assert_eq!(merged.count, sequential.count);
    }

    /// Registry-level snapshot merge: counters add exactly and
    /// histograms follow the histogram law, regardless of which
    /// registry saw which slice.
    #[test]
    fn registry_snapshots_merge_like_one_registry(
        n in 1usize..120,
        seed in 0u64..1000,
        cut in 0usize..120,
    ) {
        let values = stream(n, seed);
        let cut = cut % (n + 1);

        let whole = Registry::new();
        for &v in &values {
            whole.counter("events_total").inc();
            whole.histogram("latency_ns").record(v);
        }

        let (a, b) = (Registry::new(), Registry::new());
        for &v in &values[..cut] {
            a.counter("events_total").inc();
            a.histogram("latency_ns").record(v);
        }
        for &v in &values[cut..] {
            b.counter("events_total").inc();
            b.histogram("latency_ns").record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());

        let expect = whole.snapshot();
        prop_assert_eq!(merged.counters, expect.counters);
        prop_assert_eq!(
            merged.histograms["latency_ns"].counts,
            expect.histograms["latency_ns"].counts
        );
        prop_assert_eq!(merged.histograms["latency_ns"].sum, expect.histograms["latency_ns"].sum);
    }
}
