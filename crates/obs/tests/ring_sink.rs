//! RingSink contract tests: the bounded trace buffer must keep exactly
//! the newest `capacity` records in arrival order when it wraps, and stay
//! coherent — no lost, duplicated or reordered per-writer records — when
//! many threads trace into one shared sink.

use adamove_obs::{FieldValue, RingSink, TraceSink, Tracer};
use std::sync::Arc;
use std::time::Duration;

fn seq_of(record: &adamove_obs::SpanRecord, key: &str) -> u64 {
    match record
        .fields
        .iter()
        .find(|(k, _)| *k == key)
        .unwrap_or_else(|| panic!("record has no `{key}` field"))
    {
        (_, FieldValue::U64(v)) => *v,
        (_, other) => panic!("`{key}` is not a U64: {other:?}"),
    }
}

#[test]
fn wraparound_keeps_exactly_the_newest_capacity_records_in_order() {
    let ring = RingSink::new(4);
    for i in 0..10u64 {
        ring.event("e", &[("i", FieldValue::U64(i))]);
    }
    assert_eq!(ring.len(), 4, "ring must never exceed its capacity");
    let records = ring.take();
    assert_eq!(
        records.iter().map(|r| seq_of(r, "i")).collect::<Vec<_>>(),
        vec![6, 7, 8, 9],
        "wraparound must drop the oldest records, newest-first order intact"
    );
    // Draining resets the ring: it keeps working afterwards, and spans
    // wrap through the same bounded buffer as events.
    assert!(ring.is_empty());
    for i in 10..16u64 {
        ring.span_close("s", &[("i", FieldValue::U64(i))], Duration::from_micros(i));
    }
    let records = ring.take();
    assert_eq!(
        records.iter().map(|r| seq_of(r, "i")).collect::<Vec<_>>(),
        vec![12, 13, 14, 15]
    );
    assert!(records.iter().all(|r| r.elapsed.is_some()));
}

#[test]
fn capacity_is_clamped_to_at_least_one_record() {
    let ring = RingSink::new(0);
    ring.event("a", &[]);
    ring.event("b", &[]);
    let records = ring.take();
    assert_eq!(records.len(), 1);
    assert_eq!(
        records[0].name, "b",
        "a zero-cap ring still keeps the newest"
    );
}

/// Writers traced concurrently: with ample capacity nothing is lost, and
/// each thread's records appear in the order that thread emitted them
/// (the ring serializes arrivals; it must never reorder them).
#[test]
fn concurrent_writers_lose_nothing_and_keep_per_thread_order() {
    const THREADS: u64 = 4;
    const EVENTS: u64 = 200;
    let ring = Arc::new(RingSink::new((THREADS * EVENTS) as usize));
    let tracer = Tracer::with_sink(ring.clone());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let tracer = tracer.clone();
            scope.spawn(move || {
                for i in 0..EVENTS {
                    tracer.event("w", &[("t", FieldValue::U64(t)), ("i", FieldValue::U64(i))]);
                }
            });
        }
    });
    let records = ring.take();
    assert_eq!(records.len(), (THREADS * EVENTS) as usize, "no record lost");
    for t in 0..THREADS {
        let seqs: Vec<u64> = records
            .iter()
            .filter(|r| seq_of(r, "t") == t)
            .map(|r| seq_of(r, "i"))
            .collect();
        assert_eq!(
            seqs,
            (0..EVENTS).collect::<Vec<_>>(),
            "thread {t}: records lost, duplicated or reordered"
        );
    }
}

/// Same contention but through a ring that cannot hold everything: the
/// buffer stays at capacity and the survivors are still a clean suffix of
/// each writer's stream (drops only ever eat the oldest records).
#[test]
fn concurrent_writers_over_capacity_keep_ordered_suffixes() {
    const THREADS: u64 = 4;
    const EVENTS: u64 = 100;
    const CAPACITY: usize = 64;
    let ring = Arc::new(RingSink::new(CAPACITY));
    let tracer = Tracer::with_sink(ring.clone());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let tracer = tracer.clone();
            scope.spawn(move || {
                for i in 0..EVENTS {
                    tracer.event("w", &[("t", FieldValue::U64(t)), ("i", FieldValue::U64(i))]);
                }
            });
        }
    });
    assert_eq!(ring.len(), CAPACITY);
    let records = ring.take();
    assert_eq!(records.len(), CAPACITY);
    let mut survivors = 0usize;
    for t in 0..THREADS {
        let seqs: Vec<u64> = records
            .iter()
            .filter(|r| seq_of(r, "t") == t)
            .map(|r| seq_of(r, "i"))
            .collect();
        survivors += seqs.len();
        // A contiguous, strictly increasing tail ending at the thread's
        // last event — front-drops can never punch holes in the middle.
        if let Some(&first) = seqs.first() {
            assert_eq!(
                seqs,
                (first..EVENTS).collect::<Vec<_>>(),
                "thread {t}: survivors are not a contiguous ordered suffix"
            );
        }
    }
    assert_eq!(survivors, CAPACITY, "every survivor accounted for");
}
