//! Seeded property suite for the windowed-histogram delta arithmetic —
//! the sequential laws the model checker's concurrent models
//! (`crates/verify/tests/models_obs.rs`) build on:
//!
//! 1. **Delta law**: `last.merge(window_delta(current, last)) == current`
//!    for any two cumulative snapshots of one stream.
//! 2. **Partition law**: rolling after every chunk partitions the
//!    stream — with enough capacity, `merged() == cumulative()`.
//! 3. **Ring law**: beyond capacity the oldest windows fall off, so
//!    `merged()` may undercount but never overcounts, and the retained
//!    windows are exactly the newest rolls.

use adamove_obs::{window_delta, HistogramSnapshot, WindowedHistogram};
use proptest::prelude::*;

/// Deterministic value stream without external RNG deps: an LCG over
/// the histogram's dynamic range (1ns .. ~0.5s).
fn stream(n: usize, seed: u64) -> Vec<u64> {
    let mut state = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            1 + (state >> 16) % 500_000_000
        })
        .collect()
}

/// Chunk boundaries from raw cut points: 0 and n included, sorted.
fn bounds(cuts: &[usize], n: usize) -> Vec<usize> {
    let mut b: Vec<usize> = cuts.iter().map(|c| c % (n + 1)).collect();
    b.push(0);
    b.push(n);
    b.sort_unstable();
    b
}

fn assert_snapshots_equal(a: &HistogramSnapshot, b: &HistogramSnapshot) {
    assert_eq!(&a.counts[..], &b.counts[..]);
    assert_eq!(a.sum, b.sum);
    assert_eq!(a.count, b.count);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Delta law: cut any stream anywhere; the snapshot before the cut
    /// plus the delta across it reconstructs the snapshot after.
    #[test]
    fn delta_plus_last_reconstructs_current(
        n in 1usize..200,
        seed in 0u64..1000,
        cut in 0usize..200,
    ) {
        let values = stream(n, seed);
        let cut = cut % (n + 1);
        let w = WindowedHistogram::new(4);
        for &v in &values[..cut] {
            w.record(v);
        }
        let last = w.cumulative();
        for &v in &values[cut..] {
            w.record(v);
        }
        let current = w.cumulative();
        let delta = window_delta(&current, &last);
        let mut rebuilt = last.clone();
        rebuilt.merge(&delta);
        assert_snapshots_equal(&rebuilt, &current);
    }

    /// Partition law: roll after every chunk; with capacity for every
    /// window, the merged ring equals the cumulative stream exactly —
    /// no record double-counted or dropped by the delta arithmetic.
    #[test]
    fn rolls_partition_the_stream(
        n in 1usize..200,
        seed in 0u64..1000,
        cuts in proptest::collection::vec(0usize..200, 0..7),
    ) {
        let values = stream(n, seed);
        let b = bounds(&cuts, n);
        // Capacity covers every chunk (one roll per boundary window).
        let w = WindowedHistogram::new(b.len());
        let mut returned = HistogramSnapshot::empty();
        for pair in b.windows(2) {
            for &v in &values[pair[0]..pair[1]] {
                w.record(v);
            }
            returned.merge(&w.roll());
        }
        assert_snapshots_equal(&w.merged(), &w.cumulative());
        // The windows *returned* by roll() partition the stream too.
        assert_snapshots_equal(&returned, &w.cumulative());
    }

    /// Ring law: with a small capacity the ring keeps only the newest
    /// windows — merged() never overcounts the cumulative stream, the
    /// ring never exceeds capacity, and merging the evicted windows
    /// back in restores the partition exactly.
    #[test]
    fn bounded_ring_never_overcounts(
        n in 1usize..200,
        seed in 0u64..1000,
        cuts in proptest::collection::vec(0usize..200, 0..7),
        capacity in 1usize..4,
    ) {
        let values = stream(n, seed);
        let b = bounds(&cuts, n);
        let w = WindowedHistogram::new(capacity);
        let mut rolled: Vec<HistogramSnapshot> = Vec::new();
        for pair in b.windows(2) {
            for &v in &values[pair[0]..pair[1]] {
                w.record(v);
            }
            rolled.push(w.roll());
            prop_assert!(w.windows() <= w.capacity());
        }
        let merged = w.merged();
        let cumulative = w.cumulative();
        prop_assert!(merged.count <= cumulative.count);
        prop_assert!(merged.sum <= cumulative.sum);
        for (m, c) in merged.counts.iter().zip(cumulative.counts.iter()) {
            prop_assert!(m <= c, "ring overcounts a bucket");
        }
        // Evicted windows + retained ring == the whole stream.
        let evicted = rolled.len().saturating_sub(w.windows());
        let mut total = merged;
        for win in &rolled[..evicted] {
            total.merge(win);
        }
        assert_snapshots_equal(&total, &cumulative);
    }
}
