//! Lock-free metric primitives and the name → handle registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap clones of an
//! `Arc` around atomics: threads share them freely and every update is a
//! relaxed atomic operation — no locks, no allocation, no syscalls on the
//! hot path. The [`Registry`] mutex is touched only at registration and
//! snapshot time, never per increment.
//!
//! [`RegistrySnapshot`] is the frozen read side. Its [`merge`] is integer
//! (counter/bucket) addition plus gauge-sum, so — exactly like the core
//! crate's `MetricAccumulator` — accumulating a stream shard-by-shard and
//! merging equals one combined pass, for any partition, order or grouping
//! of the parts, with empty snapshots as identity elements.
//!
//! [`merge`]: RegistrySnapshot::merge

use adamove_verify::sync::{AtomicU64, Mutex};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Upper bounds (inclusive) of the histogram buckets: a 1–2–5 series per
/// decade from 1 to 5·10¹¹. With nanosecond values that spans 1 ns to
/// ~8.3 minutes at ~±30% relative resolution; values beyond the last
/// bound land in one overflow bucket.
pub const BUCKET_BOUNDS: [u64; 36] = [
    1,
    2,
    5,
    10,
    20,
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
    20_000_000_000,
    50_000_000_000,
    100_000_000_000,
    200_000_000_000,
    500_000_000_000,
];

/// Number of histogram buckets: one per bound plus the overflow bucket.
pub const NUM_BUCKETS: usize = BUCKET_BOUNDS.len() + 1;

/// A monotonically increasing `u64` counter. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An `f64` gauge (stored as bits in one atomic). Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        // ordering: lone value cell — readers sample whichever bits are
        // newest; nothing else is published through this store.
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (may be negative) with a CAS loop.
    #[inline]
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1.0);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket latency/value histogram (bounds: [`BUCKET_BOUNDS`]).
/// Recording is two relaxed `fetch_add`s plus a binary search over a
/// const array; cloning shares the cells.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCells>);

impl Default for Histogram {
    fn default() -> Self {
        Self(Arc::new(HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// A fresh, unregistered, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value (e.g. a latency in nanoseconds).
    #[inline]
    pub fn record(&self, value: u64) {
        let idx = BUCKET_BOUNDS.partition_point(|&b| b < value);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values so far (one relaxed load). Cheaper
    /// than a full [`snapshot`](Histogram::snapshot) when only the
    /// running total is needed, e.g. to attribute a batch's adaptation
    /// time by diffing the sum across the batch.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Freeze the current contents. Concurrent recording is allowed; the
    /// snapshot is a consistent-enough view for monitoring (bucket totals
    /// may trail `count` by in-flight records).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: [u64; NUM_BUCKETS] =
            std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed));
        HistogramSnapshot {
            count: counts.iter().sum(),
            sum: self.0.sum.load(Ordering::Relaxed),
            counts,
        }
    }
}

/// Frozen histogram contents with percentile readout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (last bucket = overflow beyond the largest bound).
    pub counts: [u64; NUM_BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
    /// Total number of recorded values.
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            counts: [0; NUM_BUCKETS],
            sum: 0,
            count: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The `q`-quantile (`0 < q <= 1`) by nearest rank, interpolated
    /// linearly on rank position between the holding bucket's lower and
    /// upper bound (the Prometheus `histogram_quantile` convention).
    /// Reporting the raw upper bound instead would pin every quantile of a
    /// narrow distribution to the same bucket edge — e.g. a stream of
    /// ~0.9 ms latencies showing `p95 = p99 = 20 ms`. Overflow values
    /// saturate to the largest bound; an empty histogram reports 0.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut before = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if before + c >= rank {
                if i >= BUCKET_BOUNDS.len() {
                    // Overflow bucket: no finite upper bound to
                    // interpolate toward.
                    return *BUCKET_BOUNDS.last().expect("non-empty bounds") as f64;
                }
                let lower = if i == 0 { 0 } else { BUCKET_BOUNDS[i - 1] } as f64;
                let upper = BUCKET_BOUNDS[i] as f64;
                let into = (rank - before) as f64 / c as f64;
                return lower + into * (upper - lower);
            }
            before += c;
        }
        *BUCKET_BOUNDS.last().expect("non-empty bounds") as f64
    }

    /// Mean of the recorded values (exact: `sum / count`).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold `other` into `self`: exact bucket-wise integer addition.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Name → metric map. Registration and snapshots lock a mutex; the
/// returned handles never do — all hot-path updates are lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Get or register the gauge named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or register the histogram named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.metrics.lock();
        metrics.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.lock().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freeze every registered metric into a [`RegistrySnapshot`].
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = self.metrics.lock();
        let mut snap = RegistrySnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// A frozen view of a [`Registry`]: plain maps, safe to merge, export and
/// assert on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → value.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram name → frozen buckets.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// An empty snapshot (the merge identity).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Fold `other` into `self`. Counters and histogram buckets add as
    /// exact integers; gauges add as floats (exact whenever the values
    /// are integers, e.g. queue depths and occupancy counts). The
    /// operation is associative and commutative with [`empty`] as
    /// identity — the `MetricAccumulator` merge laws.
    ///
    /// [`empty`]: RegistrySnapshot::empty
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0.0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_insert_with(HistogramSnapshot::empty)
                .merge(h);
        }
    }

    /// The subset of metrics whose name starts with `prefix`.
    pub fn filter_prefix(&self, prefix: &str) -> RegistrySnapshot {
        fn keep<V: Clone>(m: &BTreeMap<String, V>, prefix: &str) -> BTreeMap<String, V> {
            m.iter()
                .filter(|(k, _)| k.starts_with(prefix))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        }
        RegistrySnapshot {
            counters: keep(&self.counters, prefix),
            gauges: keep(&self.gauges, prefix),
            histograms: keep(&self.histograms, prefix),
        }
    }

    /// True when no metric is present.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// Render `name{k="v",...}` — the Prometheus-style key convention the
/// exporters understand. With no labels the bare name is returned.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{name}{{{}}}", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("x_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same cell.
        assert_eq!(r.counter("x_total").get(), 5);

        let g = r.gauge("depth");
        g.set(3.0);
        g.inc();
        g.dec();
        g.add(-1.5);
        assert_eq!(g.get(), 1.5);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = Histogram::new();
        for v in [1u64, 3, 3, 90, 700, 2_000_000_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1 + 3 + 3 + 90 + 700 + 2_000_000_000_000);
        // 3 lands in the (2, 5] bucket; overflow goes to the last bucket.
        assert_eq!(s.counts[BUCKET_BOUNDS.partition_point(|&b| b < 3)], 2);
        assert_eq!(s.counts[NUM_BUCKETS - 1], 1);
        // p50: rank 3 of 6 → the (2, 5] bucket, whose two entries are both
        // at or below rank 3 → interpolation reaches the upper bound.
        assert_eq!(s.percentile(0.50), 5.0);
        // Overflow saturates to the largest bound.
        assert_eq!(s.percentile(1.0), *BUCKET_BOUNDS.last().unwrap() as f64);
        assert!(s.mean() > 0.0);
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        // Uniform 1..=100: rank maps linearly into each bucket, so
        // interpolation recovers the exact quantile. Rank 50 sits in the
        // (20, 50] bucket as its 30th of 30 entries: 20 + 30/30 * 30 = 50.
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.snapshot().percentile(0.50), 50.0);

        // A narrow distribution no longer collapses every quantile onto
        // one bucket edge: the old bound-only readout reported p95 = p99
        // = 2_000_000 here.
        let n = Histogram::new();
        for i in 0..1000u64 {
            n.record(900_000 + i * 200); // ~0.9-1.1 ms latencies
        }
        let s = n.snapshot();
        assert!(s.percentile(0.95) < s.percentile(0.99));
        assert!(s.percentile(0.99) < 2_000_000.0);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = HistogramSnapshot::empty();
        assert_eq!(s.percentile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.count, 0);
    }

    #[test]
    fn snapshot_merge_is_exact() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("c").add(3);
        b.counter("c").add(4);
        b.counter("only_b").add(1);
        a.gauge("g").set(2.0);
        b.gauge("g").set(5.0);
        a.histogram("h").record(10);
        b.histogram("h").record(10_000);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counters["c"], 7);
        assert_eq!(merged.counters["only_b"], 1);
        assert_eq!(merged.gauges["g"], 7.0);
        assert_eq!(merged.histograms["h"].count, 2);

        // Identity element.
        let before = merged.clone();
        merged.merge(&RegistrySnapshot::empty());
        assert_eq!(merged, before);
    }

    #[test]
    fn filter_prefix_selects_by_name() {
        let r = Registry::new();
        r.counter("engine_observes_total").inc();
        r.counter("ptta_updates_total").inc();
        r.gauge("engine_queue_depth").set(1.0);
        let engine = r.snapshot().filter_prefix("engine_");
        assert_eq!(engine.counters.len(), 1);
        assert_eq!(engine.gauges.len(), 1);
        assert!(engine.histograms.is_empty());
        assert!(r.snapshot().filter_prefix("nope").is_empty());
    }

    #[test]
    fn labeled_renders_prometheus_keys() {
        assert_eq!(labeled("x_total", &[]), "x_total");
        assert_eq!(
            labeled("x_total", &[("shard", "3")]),
            "x_total{shard=\"3\"}"
        );
        assert_eq!(
            labeled("x", &[("a", "1"), ("b", "2")]),
            "x{a=\"1\",b=\"2\"}"
        );
    }
}
