//! Span tracing with a pluggable sink, built so the *disabled* path is
//! effectively free: [`Tracer::noop`] holds no sink, and both
//! [`Tracer::event`] and [`Tracer::start_span`] reduce to a single branch
//! on an `Option` — no timestamp is taken, no strings are formatted, no
//! allocation happens. The [`span!`] / [`event!`] macros go one step
//! further and only *build* the field array when a sink is attached.
//!
//! Sinks included: [`StderrSink`] (one human-readable line per record,
//! the shape the trainer's old `eprintln!` output had) and [`RingSink`]
//! (bounded in-memory buffer, for tests and mid-run inspection).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A typed field value attached to an event or span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (rendered with 4 decimals by [`StderrSink`]).
    F64(f64),
    /// Arbitrary string.
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:.4}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<f32> for FieldValue {
    fn from(v: f32) -> Self {
        FieldValue::F64(f64::from(v))
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One record captured by a sink: an instantaneous event
/// (`elapsed == None`) or a closed span (`elapsed == Some`).
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Event or span name (e.g. `"predict"`, `"train_epoch"`).
    pub name: &'static str,
    /// Ordered `(key, value)` fields attached at creation.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Wall time the span covered; `None` for instantaneous events.
    pub elapsed: Option<Duration>,
}

/// Where trace records go. Implementations must be cheap and non-blocking
/// relative to the paths they observe.
pub trait TraceSink: Send + Sync {
    /// An instantaneous event.
    fn event(&self, name: &'static str, fields: &[(&'static str, FieldValue)]);
    /// A span that just closed, having covered `elapsed` wall time.
    fn span_close(
        &self,
        name: &'static str,
        fields: &[(&'static str, FieldValue)],
        elapsed: Duration,
    );
}

/// Writes one line per record to stderr:
/// `name  key value  key value [ 12.3ms]`.
#[derive(Debug, Default)]
pub struct StderrSink;

fn render_fields(fields: &[(&'static str, FieldValue)]) -> String {
    fields
        .iter()
        .map(|(k, v)| format!("{k} {v}"))
        .collect::<Vec<_>>()
        .join("  ")
}

impl TraceSink for StderrSink {
    fn event(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        // lint:allow(print): StderrSink is the one sanctioned stderr emitter — Tracer events route here
        eprintln!("{name}  {}", render_fields(fields));
    }

    fn span_close(
        &self,
        name: &'static str,
        fields: &[(&'static str, FieldValue)],
        elapsed: Duration,
    ) {
        // lint:allow(print): StderrSink is the one sanctioned stderr emitter — Tracer spans route here
        eprintln!(
            "{name}  {}  [{:.1}ms]",
            render_fields(fields),
            elapsed.as_secs_f64() * 1e3
        );
    }
}

/// Bounded in-memory buffer of the most recent records. Oldest records
/// are dropped once `capacity` is exceeded. Intended for tests and
/// mid-run inspection, not production volume.
#[derive(Debug)]
pub struct RingSink {
    records: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
}

impl RingSink {
    /// A ring holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Self {
            records: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
        }
    }

    /// Drain and return all buffered records, oldest first.
    pub fn take(&self) -> Vec<SpanRecord> {
        let mut records = crate::sync::lock(&self.records);
        records.drain(..).collect()
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        crate::sync::lock(&self.records).len()
    }

    /// True when no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, record: SpanRecord) {
        let mut records = crate::sync::lock(&self.records);
        if records.len() == self.capacity {
            records.pop_front();
        }
        records.push_back(record);
    }
}

impl TraceSink for RingSink {
    fn event(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        self.push(SpanRecord {
            name,
            fields: fields.to_vec(),
            elapsed: None,
        });
    }

    fn span_close(
        &self,
        name: &'static str,
        fields: &[(&'static str, FieldValue)],
        elapsed: Duration,
    ) {
        self.push(SpanRecord {
            name,
            fields: fields.to_vec(),
            elapsed: Some(elapsed),
        });
    }
}

/// Entry point for tracing: either a no-op (default) or a handle to a
/// shared [`TraceSink`]. Cloning is cheap (an `Option<Arc>`), so every
/// worker thread can own one.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<dyn TraceSink>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer {
    /// The disabled tracer: no sink, every operation is a single branch.
    pub fn noop() -> Self {
        Self { sink: None }
    }

    /// A tracer writing human-readable lines to stderr.
    pub fn stderr() -> Self {
        Self::with_sink(Arc::new(StderrSink))
    }

    /// A tracer feeding the given sink.
    pub fn with_sink(sink: Arc<dyn TraceSink>) -> Self {
        Self { sink: Some(sink) }
    }

    /// True when a sink is attached. The [`span!`]/[`event!`] macros use
    /// this to skip building fields entirely when disabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emit an instantaneous event. Free when disabled.
    #[inline]
    pub fn event(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        if let Some(sink) = &self.sink {
            sink.event(name, fields);
        }
    }

    /// Open a timed span; the returned guard reports elapsed wall time to
    /// the sink when dropped. When disabled, no timestamp is taken and
    /// the guard is inert.
    #[inline]
    pub fn start_span(&self, name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> Span {
        match &self.sink {
            Some(sink) => Span {
                inner: Some(SpanInner {
                    sink: Arc::clone(sink),
                    name,
                    fields,
                    started: Instant::now(),
                }),
            },
            None => Span { inner: None },
        }
    }
}

struct SpanInner {
    sink: Arc<dyn TraceSink>,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
    started: Instant,
}

/// RAII guard returned by [`Tracer::start_span`]: reports the span close
/// (with elapsed wall time) when dropped. Inert if the tracer was
/// disabled at creation.
#[must_use = "a span measures the scope it is held for"]
pub struct Span {
    inner: Option<SpanInner>,
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Span")
            .field("active", &self.inner.is_some())
            .finish()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            inner
                .sink
                .span_close(inner.name, &inner.fields, inner.started.elapsed());
        }
    }
}

/// Open a timed span on a [`Tracer`]:
/// `let _s = span!(tracer, "predict", shard = 3, user = uid);`
/// Fields are only built (and the timestamp only taken) when the tracer
/// has a sink.
#[macro_export]
macro_rules! span {
    ($tracer:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $tracer.enabled() {
            $tracer.start_span(
                $name,
                vec![$((stringify!($key), $crate::FieldValue::from($value)),)*],
            )
        } else {
            $tracer.start_span($name, Vec::new())
        }
    };
}

/// Emit an instantaneous event on a [`Tracer`]:
/// `event!(tracer, "train_epoch", epoch = 3, loss = 0.12);`
/// Fields are only built when the tracer has a sink.
#[macro_export]
macro_rules! event {
    ($tracer:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $tracer.enabled() {
            $tracer.event(
                $name,
                &[$((stringify!($key), $crate::FieldValue::from($value)),)*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_tracer_is_inert() {
        let t = Tracer::noop();
        assert!(!t.enabled());
        t.event("e", &[("k", FieldValue::U64(1))]);
        let s = t.start_span("s", vec![]);
        assert!(s.inner.is_none());
        drop(s);
    }

    #[test]
    fn ring_sink_captures_events_and_spans() {
        let ring = Arc::new(RingSink::new(8));
        let t = Tracer::with_sink(ring.clone());
        assert!(t.enabled());

        crate::event!(t, "obs", user = 7usize, kind = "observe");
        {
            let _s = crate::span!(t, "predict", shard = 2u64);
        }

        let records = ring.take();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "obs");
        assert_eq!(records[0].elapsed, None);
        assert_eq!(records[0].fields[0], ("user", FieldValue::U64(7)));
        assert_eq!(records[1].name, "predict");
        assert!(records[1].elapsed.is_some());
        assert!(ring.is_empty());
    }

    #[test]
    fn ring_sink_drops_oldest_at_capacity() {
        let ring = RingSink::new(2);
        for i in 0..5u64 {
            ring.event("e", &[("i", FieldValue::U64(i))]);
        }
        let records = ring.take();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].fields[0].1, FieldValue::U64(3));
        assert_eq!(records[1].fields[0].1, FieldValue::U64(4));
    }

    #[test]
    fn field_value_display_formats() {
        assert_eq!(FieldValue::U64(3).to_string(), "3");
        assert_eq!(FieldValue::I64(-3).to_string(), "-3");
        assert_eq!(FieldValue::F64(0.5).to_string(), "0.5000");
        assert_eq!(FieldValue::Str("x".into()).to_string(), "x");
    }
}
