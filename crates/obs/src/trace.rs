//! Request tracing primitives: the [`TraceContext`] carried end-to-end
//! through the serving stack, the per-request [`Stage`] latency
//! taxonomy, and the [`FlightRecorder`] — an always-on bounded ring
//! that tail-samples complete span trees for *anomalous* requests only.
//!
//! Design constraints, in order:
//!
//! 1. **The happy path pays (almost) nothing.** A non-anomalous request
//!    touches the recorder exactly once: one relaxed atomic load plus a
//!    compare ([`FlightRecorder::is_slow`]). No slot is claimed, no
//!    lock is taken, nothing allocates. The `overhead` test in this
//!    crate pins this the same way it pins the disabled-`event!` cost.
//! 2. **Recording never blocks.** Anomalous requests claim a slot with
//!    one atomic `fetch_add` (distinct writers get distinct slots) and
//!    take that slot's own mutex with `try_lock` — uncontended except
//!    when the ring wraps onto a slot mid-dump, in which case the
//!    record is *dropped and counted* ([`FlightRecorder::dropped`])
//!    rather than waited for. The workspace forbids `unsafe`, so this
//!    is the honest shape of "lock-free enough": the hot path has no
//!    critical section and the cold path cannot stall a worker.
//! 3. **Context is a value.** [`TraceContext`] is 16 bytes and `Copy`;
//!    it is passed by value and never parked in a global (`adamove-lint`
//!    rule `trace-context` enforces both), so request identity flows
//!    only along the request's own call path.

use adamove_verify::sync::{AtomicU64, Mutex};
use std::fmt::Write as _;
use std::sync::atomic::Ordering;

use crate::span::{FieldValue, TraceSink};

/// Identity of one request's trace: a request id plus the id of the
/// causal parent (0 = no parent). Minted by the serving front-end and
/// carried by value through protocol → server → engine → predictor, so
/// every span in the request's life shares one id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// This request's id (unique per server process; never 0 for a
    /// minted context).
    pub request_id: u64,
    /// The id of the request or span that caused this one; 0 for roots.
    pub parent_id: u64,
}

impl TraceContext {
    /// A root context with no parent.
    pub fn root(request_id: u64) -> Self {
        Self {
            request_id,
            parent_id: 0,
        }
    }

    /// A child of `self` with its own id — `self.request_id` becomes
    /// the child's parent. Takes and returns by value ([`TraceContext`]
    /// is 16 bytes of `Copy`).
    pub fn child(self, request_id: u64) -> Self {
        Self {
            request_id,
            parent_id: self.request_id,
        }
    }

    /// True when this context has no causal parent.
    pub fn is_root(self) -> bool {
        self.parent_id == 0
    }
}

/// Number of stages in the per-request latency taxonomy.
pub const NUM_STAGES: usize = 7;

/// Where a request's time can go, end to end: the wire stages measured
/// by the serve worker (decode / admission / encode), and the engine
/// stages measured inside the shard (queue-wait / device forward /
/// adaptation / journal append). One enum so serve and engine histograms
/// share one `stage="..."` label vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Wire-format decode of the request frame.
    Decode = 0,
    /// Admission-control decision.
    Admission = 1,
    /// Waiting in the shard's request queue.
    QueueWait = 2,
    /// Share of the batched device forward pass (minus adaptation).
    Forward = 3,
    /// Share of PTTA test-time adaptation within the forward pass.
    Adapt = 4,
    /// Write-ahead journal append (observes only).
    Journal = 5,
    /// Wire-format encode of the reply frame.
    Encode = 6,
}

impl Stage {
    /// Every stage, in taxonomy order.
    pub const ALL: [Stage; NUM_STAGES] = [
        Stage::Decode,
        Stage::Admission,
        Stage::QueueWait,
        Stage::Forward,
        Stage::Adapt,
        Stage::Journal,
        Stage::Encode,
    ];

    /// The stage's `stage="..."` label value.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::Admission => "admission",
            Stage::QueueWait => "queue_wait",
            Stage::Forward => "forward",
            Stage::Adapt => "adapt",
            Stage::Journal => "journal",
            Stage::Encode => "encode",
        }
    }
}

/// Per-stage nanosecond timings for one request — the flattened span
/// tree under the request's root span. Sixteen `u64`s on the stack;
/// no allocation on the request path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    ns: [u64; NUM_STAGES],
}

impl StageTimings {
    /// All-zero timings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite `stage`'s timing.
    #[inline]
    pub fn set(&mut self, stage: Stage, ns: u64) {
        self.ns[stage as usize] = ns;
    }

    /// Add to `stage`'s timing (saturating).
    #[inline]
    pub fn add(&mut self, stage: Stage, ns: u64) {
        let slot = &mut self.ns[stage as usize];
        *slot = slot.saturating_add(ns);
    }

    /// `stage`'s timing in nanoseconds.
    #[inline]
    pub fn get(&self, stage: Stage) -> u64 {
        self.ns[stage as usize]
    }

    /// Sum over all stages (saturating). For a well-formed span tree
    /// this is bounded by the enclosing request span's total.
    pub fn sum(&self) -> u64 {
        self.ns.iter().fold(0u64, |acc, &v| acc.saturating_add(v))
    }

    /// The stages with a non-zero timing, in taxonomy order.
    pub fn nonzero(&self) -> impl Iterator<Item = (Stage, u64)> + '_ {
        Stage::ALL
            .iter()
            .map(|&s| (s, self.get(s)))
            .filter(|&(_, ns)| ns > 0)
    }
}

/// Why a request (or engine event) was captured by the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// Total latency exceeded the windowed p99 gate.
    SlowRequest,
    /// Admission control shed the request.
    Shed,
    /// The server refused at its connection/backlog cap.
    Busy,
    /// Reply carried `Degraded` quality (state lost with a shard).
    Degraded,
    /// Reply carried `Frozen` quality (adaptation breaker open).
    BreakerOpen,
    /// Any other typed error reply (shard down, timeout, unexpected).
    Error,
    /// The recovery layer respawned a shard worker.
    ShardRespawn,
    /// A shard worker panicked (injected or real).
    ShardPanic,
    /// A shard's write-ahead journal overflowed past the last checkpoint
    /// — the first lost-durability moment (exact replay impossible until
    /// the next checkpoint).
    JournalOverflow,
}

impl AnomalyKind {
    /// Stable wire/JSON name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            AnomalyKind::SlowRequest => "slow_request",
            AnomalyKind::Shed => "shed",
            AnomalyKind::Busy => "busy",
            AnomalyKind::Degraded => "degraded",
            AnomalyKind::BreakerOpen => "breaker_open",
            AnomalyKind::Error => "error",
            AnomalyKind::ShardRespawn => "shard_respawn",
            AnomalyKind::ShardPanic => "shard_panic",
            AnomalyKind::JournalOverflow => "journal_overflow",
        }
    }
}

/// One captured anomaly: the request's identity, why it was captured,
/// and its complete span tree (root total + per-stage breakdown).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// The request's trace context (zeroed for engine-level events that
    /// have no originating request).
    pub ctx: TraceContext,
    /// Why this record exists.
    pub kind: AnomalyKind,
    /// The operation: `"predict"`, `"observe"`, `"snapshot"`, or
    /// `"event"` for engine-level captures.
    pub op: &'static str,
    /// The engine shard involved (`u64::MAX` when not applicable).
    pub shard: u64,
    /// The enclosing request span's total wall time, nanoseconds.
    pub total_ns: u64,
    /// Per-stage breakdown; each stage is a child span of the root.
    pub stages: StageTimings,
}

impl FlightRecord {
    /// A record for an engine-level event (respawn, panic) with no
    /// originating request span.
    pub fn event(kind: AnomalyKind, request_id: u64, shard: u64) -> Self {
        Self {
            ctx: TraceContext::root(request_id),
            kind,
            op: "event",
            shard,
            total_ns: 0,
            stages: StageTimings::new(),
        }
    }
}

/// Bounded tail-sampling ring for anomalous requests. Always armed;
/// see the [module docs](self) for the hot-path cost model. Also a
/// [`TraceSink`], so wiring it as an engine tracer captures shard
/// respawns and panics alongside request-level anomalies.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<(u64, FlightRecord)>>>,
    /// Total records ever pushed; `fetch_add` on it claims a slot.
    cursor: AtomicU64,
    /// Records abandoned because the claimed slot was contended.
    dropped: AtomicU64,
    /// Latency gate in ns; `u64::MAX` until a window publishes a p99.
    slow_gate_ns: AtomicU64,
}

impl FlightRecorder {
    /// A ring retaining the `capacity` most recent records (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slow_gate_ns: AtomicU64::new(u64::MAX),
        }
    }

    /// Maximum retained records.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever pushed (retained or since overwritten).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Records dropped because their slot was contended at push time.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Publish the windowed-p99 latency gate (the ticker calls this
    /// each window; requests slower than the gate are anomalous).
    pub fn set_slow_gate_ns(&self, ns: u64) {
        // ordering: is_slow reads this for a control decision, but a
        // stale gate only misclassifies a borderline request for one
        // window — no data is guarded, so Relaxed suffices.
        self.slow_gate_ns.store(ns, Ordering::Relaxed);
    }

    /// The latency gate in force (`u64::MAX` = not yet published).
    pub fn slow_gate_ns(&self) -> u64 {
        self.slow_gate_ns.load(Ordering::Relaxed)
    }

    /// The whole hot-path cost for a non-anomalous request: one relaxed
    /// load and a compare. Pinned by the crate's overhead test.
    #[inline]
    pub fn is_slow(&self, total_ns: u64) -> bool {
        total_ns > self.slow_gate_ns.load(Ordering::Relaxed)
    }

    /// Push one record (anomalous requests only — callers gate on
    /// [`is_slow`](FlightRecorder::is_slow) / reply outcome). Claims a
    /// slot with one `fetch_add`; if that slot's lock is contended the
    /// record is dropped and counted instead of blocking.
    pub fn record(&self, record: FlightRecord) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let idx = (seq % self.slots.len() as u64) as usize;
        match self.slots[idx].try_lock() {
            Ok(mut slot) => *slot = Some((seq, record)),
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The retained records, oldest first.
    pub fn dump(&self) -> Vec<FlightRecord> {
        let mut tagged: Vec<(u64, FlightRecord)> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().clone())
            .collect();
        tagged.sort_by_key(|(seq, _)| *seq);
        tagged.into_iter().map(|(_, rec)| rec).collect()
    }

    /// Render the ring as one flat JSON object (the same serde-free
    /// shape the registry exporters and the testkit's `parse_flat`
    /// speak): recorder totals plus, per retained record `i`,
    /// `flight_*{rec="i"}` fields and one
    /// `flight_stage_ns{rec="i",stage="..."}` field per non-zero stage.
    pub fn to_flat_json(&self) -> String {
        let records = self.dump();
        let mut fields: Vec<(String, String)> = vec![
            ("flight_capacity".to_string(), self.capacity().to_string()),
            (
                "flight_recorded_total".to_string(),
                self.recorded().to_string(),
            ),
            (
                "flight_dropped_total".to_string(),
                self.dropped().to_string(),
            ),
        ];
        for (i, rec) in records.iter().enumerate() {
            let mut field = |name: &str, value: String| {
                fields.push((format!("{name}{{rec=\"{i}\"}}"), value));
            };
            field("flight_request_id", rec.ctx.request_id.to_string());
            field("flight_parent_id", rec.ctx.parent_id.to_string());
            field("flight_kind", format!("\"{}\"", rec.kind.name()));
            field("flight_op", format!("\"{}\"", rec.op));
            field("flight_shard", rec.shard.to_string());
            field("flight_total_ns", rec.total_ns.to_string());
            for (stage, ns) in rec.stages.nonzero() {
                fields.push((
                    format!("flight_stage_ns{{rec=\"{i}\",stage=\"{}\"}}", stage.name()),
                    ns.to_string(),
                ));
            }
        }
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::from("{\n");
        let last = fields.len().saturating_sub(1);
        for (i, (k, v)) in fields.iter().enumerate() {
            let _ = write!(out, "  \"{}\": {v}", escape(k));
            out.push_str(if i == last { "\n" } else { ",\n" });
        }
        out.push_str("}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn field_u64(fields: &[(&'static str, FieldValue)], key: &str) -> u64 {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            FieldValue::U64(u) => Some(*u),
            FieldValue::I64(i) => u64::try_from(*i).ok(),
            _ => None,
        })
        .unwrap_or(0)
}

/// Engine events become flight records: a tracer wired to the recorder
/// captures shard respawns and panics in the same ring as request-level
/// anomalies. Other event names and span closes are ignored.
impl TraceSink for FlightRecorder {
    fn event(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        let kind = match name {
            "shard_respawn" => AnomalyKind::ShardRespawn,
            "shard_panic" => AnomalyKind::ShardPanic,
            "journal_overflow" => AnomalyKind::JournalOverflow,
            _ => return,
        };
        self.record(FlightRecord::event(
            kind,
            field_u64(fields, "request_id"),
            field_u64(fields, "shard"),
        ));
    }

    fn span_close(
        &self,
        _name: &'static str,
        _fields: &[(&'static str, FieldValue)],
        _elapsed: std::time::Duration,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;
    use std::sync::Arc;

    fn request(id: u64, kind: AnomalyKind, total_ns: u64) -> FlightRecord {
        let mut stages = StageTimings::new();
        stages.set(Stage::Decode, 10);
        stages.set(Stage::Forward, total_ns / 2);
        FlightRecord {
            ctx: TraceContext::root(id),
            kind,
            op: "predict",
            shard: 3,
            total_ns,
            stages,
        }
    }

    #[test]
    fn trace_context_parents_chain_by_value() {
        let root = TraceContext::root(7);
        assert!(root.is_root());
        let child = root.child(8);
        assert_eq!(child.request_id, 8);
        assert_eq!(child.parent_id, 7);
        assert!(!child.is_root());
    }

    #[test]
    fn stage_timings_sum_and_nonzero() {
        let mut t = StageTimings::new();
        assert_eq!(t.sum(), 0);
        t.set(Stage::QueueWait, 5);
        t.add(Stage::QueueWait, 10);
        t.set(Stage::Encode, u64::MAX);
        assert_eq!(t.get(Stage::QueueWait), 15);
        assert_eq!(t.sum(), u64::MAX); // saturates
        let nz: Vec<_> = t.nonzero().collect();
        assert_eq!(nz[0], (Stage::QueueWait, 15));
        assert_eq!(nz[1], (Stage::Encode, u64::MAX));
        assert_eq!(Stage::ALL.len(), NUM_STAGES);
    }

    #[test]
    fn ring_retains_newest_records_in_order() {
        let rec = FlightRecorder::new(3);
        for i in 0..5u64 {
            rec.record(request(i, AnomalyKind::Shed, 100));
        }
        assert_eq!(rec.recorded(), 5);
        assert_eq!(rec.dropped(), 0);
        let dump = rec.dump();
        let ids: Vec<u64> = dump.iter().map(|r| r.ctx.request_id).collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }

    #[test]
    fn slow_gate_defaults_shut_and_opens_on_publish() {
        let rec = FlightRecorder::new(4);
        // Until a window publishes a p99, nothing counts as slow.
        assert!(!rec.is_slow(u64::MAX - 1));
        rec.set_slow_gate_ns(1_000);
        assert_eq!(rec.slow_gate_ns(), 1_000);
        assert!(rec.is_slow(1_001));
        assert!(!rec.is_slow(1_000));
    }

    #[test]
    fn flat_json_dump_parses_and_carries_span_trees() {
        let rec = FlightRecorder::new(4);
        rec.record(request(11, AnomalyKind::Degraded, 9_000));
        rec.record(FlightRecord::event(AnomalyKind::ShardRespawn, 0, 2));
        let json = rec.to_flat_json();
        assert!(json.contains("\"flight_capacity\": 4"));
        assert!(json.contains("\"flight_recorded_total\": 2"));
        assert!(json.contains("\"flight_request_id{rec=\\\"0\\\"}\": 11"));
        assert!(json.contains("\"flight_kind{rec=\\\"0\\\"}\": \"degraded\""));
        assert!(json.contains("\"flight_stage_ns{rec=\\\"0\\\",stage=\\\"forward\\\"}\": 4500"));
        assert!(json.contains("\"flight_kind{rec=\\\"1\\\"}\": \"shard_respawn\""));
        assert!(json.contains("\"flight_shard{rec=\\\"1\\\"}\": 2"));
        // Valid flat JSON: balanced braces, one field per line, no
        // trailing comma before the close.
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(!json.contains(",\n}"));
    }

    #[test]
    fn tracer_events_land_in_the_ring() {
        let rec = Arc::new(FlightRecorder::new(8));
        let tracer = Tracer::with_sink(Arc::clone(&rec) as Arc<dyn TraceSink>);
        crate::event!(tracer, "shard_respawn", shard = 5u64, degraded = 1u64);
        crate::event!(tracer, "shard_checkpoint", shard = 5u64); // ignored
        let dump = rec.dump();
        assert_eq!(dump.len(), 1);
        assert_eq!(dump[0].kind, AnomalyKind::ShardRespawn);
        assert_eq!(dump[0].shard, 5);
        assert_eq!(dump[0].op, "event");
    }
}
