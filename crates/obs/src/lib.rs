#![warn(missing_docs)]
//! Observability for the AdaMove serving + TTA stack: metrics, spans,
//! exporters — designed to be *effectively free when disabled*.
//!
//! Three layers, all dependency-free:
//!
//! - [`registry`] — a lock-free metric registry: [`Counter`]s and
//!   [`Gauge`]s are single relaxed atomics, [`Histogram`]s are fixed
//!   exponential bucket arrays of atomics with p50/p95/p99 readout.
//!   Registration (name → handle) takes a mutex once; every increment on
//!   the returned handle is pure atomic arithmetic. Snapshots
//!   ([`RegistrySnapshot`]) obey the same merge laws as the core crate's
//!   `MetricAccumulator`: merging per-shard snapshots in any order or
//!   grouping equals one combined recording pass, exactly.
//! - [`span`] — lightweight span tracing ([`span!`], [`event!`]) with a
//!   pluggable [`TraceSink`]. The default [`Tracer::noop`] has no sink:
//!   a disabled span takes no timestamp, allocates nothing, and compiles
//!   down to one branch on an `Option`. [`RingSink`] (bounded in-memory
//!   buffer) and [`StderrSink`] (human-readable lines) are included.
//! - [`export`] — Prometheus-style text exposition and flat JSON (the
//!   same hand-rolled, serde-free format the testkit uses for golden
//!   files, so exports parse under the offline dependency stubs too).
//!
//! # Metric naming
//!
//! Names are `snake_case` with a unit suffix (`_total` for counters,
//! `_ns`/`_us` for latency histograms); per-shard or per-city dimensions
//! go in Prometheus-style labels rendered into the key by [`labeled`]:
//! `engine_predicts_total{shard="3"}`. Exporters split the rendered key
//! back apart, so the registry itself stays a flat string → metric map.

pub mod export;
pub mod registry;
pub mod span;
pub mod sync;
pub mod time;
pub mod trace;
pub mod window;

pub use export::{to_flat_json, to_prometheus};
pub use registry::{
    labeled, Counter, Gauge, Histogram, HistogramSnapshot, Registry, RegistrySnapshot,
    BUCKET_BOUNDS, NUM_BUCKETS,
};
pub use span::{FieldValue, RingSink, Span, SpanRecord, StderrSink, TraceSink, Tracer};
pub use sync::lock;
pub use time::Stopwatch;
pub use trace::{
    AnomalyKind, FlightRecord, FlightRecorder, Stage, StageTimings, TraceContext, NUM_STAGES,
};
pub use window::{window_delta, WindowedHistogram};
