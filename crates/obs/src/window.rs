//! Windowed histogram views: a ring of fixed-width delta windows over a
//! cumulative [`Histogram`].
//!
//! A cumulative histogram never forgets: one catastrophic burst keeps
//! its p99 catastrophic for the rest of the run, which turns transient
//! overload into permanent policy (admission control shedding forever,
//! anomaly gates that never re-arm). The fix is *windowing* — diff
//! successive snapshots so each window holds only what was recorded
//! between two ticks. This module promotes that logic (previously
//! hand-rolled inside `adamove-serve`'s admission ticker) into a
//! reusable primitive with explicit merge laws:
//!
//! - **delta law** — [`window_delta`]`(current, last)` is exact
//!   bucket-wise subtraction, so `last.merge(&delta) == current`;
//! - **partition law** — merging every window rolled since construction
//!   equals the cumulative delta over the same interval, for any tick
//!   placement (windows partition the record stream);
//! - **ring law** — at most `capacity` windows are retained, oldest
//!   dropped first, so [`merged`] is a bounded trailing view.
//!
//! Recording stays lock-free (it goes straight to the shared
//! [`Histogram`] cells); only [`roll`] — called by a single ticker
//! thread at window cadence — takes the internal mutex.
//!
//! [`merged`]: WindowedHistogram::merged
//! [`roll`]: WindowedHistogram::roll

use adamove_verify::sync::Mutex;
use std::collections::VecDeque;

use crate::registry::{Histogram, HistogramSnapshot};

/// The histogram delta `current − last`: what was recorded between two
/// cumulative snapshots. Saturating per bucket, so a restarted or
/// swapped histogram degrades to "treat current as the whole window"
/// rather than wrapping.
pub fn window_delta(current: &HistogramSnapshot, last: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = HistogramSnapshot::empty();
    for (o, (c, l)) in out
        .counts
        .iter_mut()
        .zip(current.counts.iter().zip(last.counts.iter()))
    {
        *o = c.saturating_sub(*l);
    }
    out.sum = current.sum.saturating_sub(last.sum);
    out.count = current.count.saturating_sub(last.count);
    out
}

#[derive(Debug)]
struct WindowState {
    /// Cumulative snapshot at the last roll (or at construction).
    last: HistogramSnapshot,
    /// Rolled delta windows, oldest first.
    ring: VecDeque<HistogramSnapshot>,
}

/// A cumulative [`Histogram`] plus a bounded ring of per-tick delta
/// windows. Construct with [`new`] (own histogram) or [`around`] (wrap
/// an already-registered histogram, e.g. a shard's predict-latency
/// cells); call [`roll`] once per tick to cut a window.
///
/// [`new`]: WindowedHistogram::new
/// [`around`]: WindowedHistogram::around
/// [`roll`]: WindowedHistogram::roll
#[derive(Debug)]
pub struct WindowedHistogram {
    source: Histogram,
    capacity: usize,
    state: Mutex<WindowState>,
}

impl WindowedHistogram {
    /// A windowed view over a fresh histogram, retaining at most
    /// `capacity` rolled windows (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self::around(Histogram::new(), capacity)
    }

    /// A windowed view over an existing histogram (sharing its cells).
    /// Values recorded before this call belong to no window: the first
    /// [`roll`](WindowedHistogram::roll) diffs against the snapshot
    /// taken here, exactly like the admission ticker it replaces.
    pub fn around(source: Histogram, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let last = source.snapshot();
        Self {
            source,
            capacity,
            state: Mutex::new(WindowState {
                last,
                ring: VecDeque::with_capacity(capacity),
            }),
        }
    }

    /// Record one value into the underlying histogram (lock-free).
    #[inline]
    pub fn record(&self, value: u64) {
        self.source.record(value);
    }

    /// A shared handle on the underlying cumulative histogram.
    pub fn source(&self) -> Histogram {
        self.source.clone()
    }

    /// Cut a window: the delta since the previous roll (or since
    /// construction), pushed into the ring — dropping the oldest window
    /// beyond capacity — and returned.
    pub fn roll(&self) -> HistogramSnapshot {
        let current = self.source.snapshot();
        let mut state = self.state.lock();
        let window = window_delta(&current, &state.last);
        state.last = current;
        if state.ring.len() == self.capacity {
            state.ring.pop_front();
        }
        state.ring.push_back(window.clone());
        window
    }

    /// The most recently rolled window (empty before the first roll).
    pub fn window(&self) -> HistogramSnapshot {
        self.state
            .lock()
            .ring
            .back()
            .cloned()
            .unwrap_or_else(HistogramSnapshot::empty)
    }

    /// Every retained window merged into one snapshot — the trailing
    /// `capacity × tick` view.
    pub fn merged(&self) -> HistogramSnapshot {
        let state = self.state.lock();
        let mut out = HistogramSnapshot::empty();
        for w in &state.ring {
            out.merge(w);
        }
        out
    }

    /// The cumulative snapshot of the underlying histogram (everything
    /// ever recorded, windowed or not).
    pub fn cumulative(&self) -> HistogramSnapshot {
        self.source.snapshot()
    }

    /// Number of windows currently retained.
    pub fn windows(&self) -> usize {
        self.state.lock().ring.len()
    }

    /// Maximum number of retained windows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_law_merges_back_to_current() {
        let h = Histogram::new();
        for v in [10u64, 500, 2_000_000] {
            h.record(v);
        }
        let last = h.snapshot();
        for v in [70u64, 9_999] {
            h.record(v);
        }
        let current = h.snapshot();
        let delta = window_delta(&current, &last);
        assert_eq!(delta.count, 2);
        let mut rebuilt = last.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, current);
    }

    #[test]
    fn rolled_windows_partition_the_record_stream() {
        let wh = WindowedHistogram::new(8);
        let batches: &[&[u64]] = &[&[100, 200], &[], &[5_000_000], &[1, 1, 1]];
        let mut windows = Vec::new();
        for batch in batches {
            for &v in *batch {
                wh.record(v);
            }
            windows.push(wh.roll());
        }
        // Each window holds exactly its batch...
        for (w, batch) in windows.iter().zip(batches) {
            assert_eq!(w.count, batch.len() as u64);
            assert_eq!(w.sum, batch.iter().sum::<u64>());
        }
        // ...and merging them all reproduces the cumulative histogram
        // exactly, for this (and any) tick placement.
        assert_eq!(wh.merged(), wh.cumulative());
        assert_eq!(wh.windows(), batches.len());
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let wh = WindowedHistogram::new(2);
        assert_eq!(wh.capacity(), 2);
        for v in [10u64, 20, 30] {
            wh.record(v);
            wh.roll();
        }
        // Three rolls, capacity two: the window holding 10 is gone.
        assert_eq!(wh.windows(), 2);
        let merged = wh.merged();
        assert_eq!(merged.count, 2);
        assert_eq!(merged.sum, 50);
        // The cumulative view still remembers everything.
        assert_eq!(wh.cumulative().count, 3);
        // The latest window holds only the last batch.
        assert_eq!(wh.window().sum, 30);
    }

    #[test]
    fn around_shares_cells_and_skips_history() {
        let h = Histogram::new();
        h.record(1_000_000); // before wrapping: belongs to no window
        let wh = WindowedHistogram::around(h.clone(), 4);
        h.record(42); // recorded via the *source* handle
        let w = wh.roll();
        assert_eq!(w.count, 1);
        assert_eq!(w.sum, 42);
        assert_eq!(wh.cumulative().count, 2);
        // The source() handle is the same cells.
        wh.source().record(7);
        assert_eq!(h.snapshot().count, 3);
    }

    #[test]
    fn empty_roll_and_zero_capacity_are_safe() {
        let wh = WindowedHistogram::new(0); // clamped to 1
        assert_eq!(wh.capacity(), 1);
        assert_eq!(wh.window(), HistogramSnapshot::empty());
        let w = wh.roll();
        assert_eq!(w, HistogramSnapshot::empty());
        assert_eq!(wh.merged(), HistogramSnapshot::empty());
    }
}
