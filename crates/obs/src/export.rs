//! Snapshot exporters: flat JSON (the hand-rolled, serde-free shape the
//! testkit uses for golden files, so exports parse under the offline
//! dependency stubs) and Prometheus text exposition.
//!
//! Both operate on a [`RegistrySnapshot`], so they can be applied to a
//! single registry, a merged fleet of them, or a [`filter_prefix`] slice.
//!
//! [`filter_prefix`]: crate::registry::RegistrySnapshot::filter_prefix

use std::fmt::Write as _;

use crate::registry::{HistogramSnapshot, RegistrySnapshot, BUCKET_BOUNDS};

/// Split a rendered key (`name{k="v"}` or bare `name`) into the base name
/// and the label body (without braces).
fn split_key(key: &str) -> (&str, Option<&str>) {
    match key.find('{') {
        Some(i) if key.ends_with('}') => (&key[..i], Some(&key[i + 1..key.len() - 1])),
        _ => (key, None),
    }
}

/// Re-attach a label body to a name that may have gained a suffix:
/// `with_suffix("h{shard=\"1\"}", "_p99")` → `h_p99{shard=\"1\"}`.
fn with_suffix(key: &str, suffix: &str) -> String {
    let (base, labels) = split_key(key);
    match labels {
        Some(body) => format!("{base}{suffix}{{{body}}}"),
        None => format!("{base}{suffix}"),
    }
}

fn fmt_num(n: f64) -> String {
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render the snapshot as one flat JSON object, sorted by key, one field
/// per line. Counters and gauges appear under their rendered key;
/// each histogram `h{l}` expands to `h_count{l}`, `h_sum{l}`,
/// `h_mean{l}`, `h_p50{l}`, `h_p95{l}`, `h_p99{l}`.
///
/// The output is parseable by `adamove-testkit`'s `parse_flat` and by any
/// ordinary JSON parser.
pub fn to_flat_json(snap: &RegistrySnapshot) -> String {
    let mut fields: Vec<(String, f64)> = Vec::new();
    for (key, v) in &snap.counters {
        fields.push((key.clone(), *v as f64));
    }
    for (key, v) in &snap.gauges {
        fields.push((key.clone(), *v));
    }
    for (key, h) in &snap.histograms {
        fields.push((with_suffix(key, "_count"), h.count as f64));
        fields.push((with_suffix(key, "_sum"), h.sum as f64));
        fields.push((with_suffix(key, "_mean"), h.mean()));
        fields.push((with_suffix(key, "_p50"), h.percentile(0.50)));
        fields.push((with_suffix(key, "_p95"), h.percentile(0.95)));
        fields.push((with_suffix(key, "_p99"), h.percentile(0.99)));
    }
    fields.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = String::from("{\n");
    let last = fields.len().saturating_sub(1);
    for (i, (k, v)) in fields.iter().enumerate() {
        let _ = write!(out, "  \"{}\": {}", escape(k), fmt_num(*v));
        out.push_str(if i == last { "\n" } else { ",\n" });
    }
    out.push_str("}\n");
    out
}

fn prom_key(key: &str, extra: Option<(&str, &str)>) -> String {
    let (base, labels) = split_key(key);
    let mut body = labels.unwrap_or("").to_string();
    if let Some((k, v)) = extra {
        if !body.is_empty() {
            body.push(',');
        }
        let _ = write!(body, "{k}=\"{v}\"");
    }
    if body.is_empty() {
        base.to_string()
    } else {
        format!("{base}{{{body}}}")
    }
}

fn prom_histogram(out: &mut String, key: &str, h: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for (i, &bound) in BUCKET_BOUNDS.iter().enumerate() {
        cumulative += h.counts[i];
        let le = fmt_num(bound as f64);
        let _ = writeln!(
            out,
            "{} {}",
            prom_key(&with_suffix(key, "_bucket"), Some(("le", &le))),
            cumulative
        );
    }
    let _ = writeln!(
        out,
        "{} {}",
        prom_key(&with_suffix(key, "_bucket"), Some(("le", "+Inf"))),
        h.count
    );
    let _ = writeln!(out, "{} {}", with_suffix(key, "_sum"), h.sum);
    let _ = writeln!(out, "{} {}", with_suffix(key, "_count"), h.count);
}

/// Render the snapshot in Prometheus text exposition format: a `# TYPE`
/// line per base metric name, counters/gauges as single samples, and
/// histograms as cumulative `_bucket{le="..."}` series plus `_sum` and
/// `_count`.
pub fn to_prometheus(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut last_type_line = String::new();
    let mut type_line = |out: &mut String, base: &str, kind: &str| {
        let line = format!("# TYPE {base} {kind}\n");
        if line != last_type_line {
            out.push_str(&line);
            last_type_line = line;
        }
    };

    for (key, v) in &snap.counters {
        type_line(&mut out, split_key(key).0, "counter");
        let _ = writeln!(out, "{key} {v}");
    }
    for (key, v) in &snap.gauges {
        type_line(&mut out, split_key(key).0, "gauge");
        let _ = writeln!(out, "{key} {}", fmt_num(*v));
    }
    for (key, h) in &snap.histograms {
        type_line(&mut out, split_key(key).0, "histogram");
        prom_histogram(&mut out, key, h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{labeled, Registry};

    fn sample() -> RegistrySnapshot {
        let r = Registry::new();
        r.counter(&labeled("engine_predicts_total", &[("shard", "0")]))
            .add(3);
        r.counter(&labeled("engine_predicts_total", &[("shard", "1")]))
            .add(4);
        r.gauge("engine_queue_depth{shard=\"0\"}").set(2.0);
        let h = r.histogram(&labeled("predict_latency_ns", &[("shard", "0")]));
        h.record(150);
        h.record(90_000);
        r.snapshot()
    }

    #[test]
    fn flat_json_expands_histograms_and_keeps_labels() {
        let json = to_flat_json(&sample());
        assert!(json.contains("\"engine_predicts_total{shard=\\\"0\\\"}\": 3"));
        assert!(json.contains("\"engine_predicts_total{shard=\\\"1\\\"}\": 4"));
        assert!(json.contains("\"predict_latency_ns_count{shard=\\\"0\\\"}\": 2"));
        assert!(json.contains("\"predict_latency_ns_sum{shard=\\\"0\\\"}\": 90150"));
        assert!(json.contains("predict_latency_ns_p99{shard=\\\"0\\\"}"));
        // Integral values print with no fraction.
        assert!(
            json.contains("\"engine_queue_depth{shard=\\\"0\\\"}\": 2\n")
                || json.contains("\"engine_queue_depth{shard=\\\"0\\\"}\": 2,")
        );
    }

    #[test]
    fn flat_json_of_empty_snapshot_is_empty_object() {
        assert_eq!(to_flat_json(&RegistrySnapshot::empty()), "{\n}\n");
    }

    #[test]
    fn prometheus_emits_types_and_cumulative_buckets() {
        let text = to_prometheus(&sample());
        assert!(text.contains("# TYPE engine_predicts_total counter"));
        assert!(text.contains("# TYPE engine_queue_depth gauge"));
        assert!(text.contains("# TYPE predict_latency_ns histogram"));
        assert!(text.contains("engine_predicts_total{shard=\"0\"} 3"));
        // Bucket series is cumulative and ends at +Inf with the total count.
        assert!(text.contains("predict_latency_ns_bucket{shard=\"0\",le=\"+Inf\"} 2"));
        assert!(text.contains("predict_latency_ns_sum{shard=\"0\"} 90150"));
        assert!(text.contains("predict_latency_ns_count{shard=\"0\"} 2"));
        // 150 lands at the le="200" cumulative step.
        assert!(text.contains("predict_latency_ns_bucket{shard=\"0\",le=\"200\"} 1"));
        assert!(text.contains("predict_latency_ns_bucket{shard=\"0\",le=\"100000\"} 2"));
    }

    #[test]
    fn type_line_emitted_once_per_base_name() {
        let text = to_prometheus(&sample());
        let count = text.matches("# TYPE engine_predicts_total counter").count();
        assert_eq!(count, 1);
    }
}
