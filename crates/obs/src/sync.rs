//! Poison-tolerant locking — the one sanctioned way to take a mutex.
//!
//! A poisoned `Mutex` only means some other thread panicked while
//! holding the guard; it says nothing about the integrity of the data
//! behind it. Every structure this workspace guards with a mutex
//! (metric registries, trace sinks, shard send-slots, write-ahead
//! journals) is kept valid across arbitrary unwind points, and the
//! serving stack's whole job is to keep working after a worker panic —
//! so propagating poison as a second panic would turn one contained
//! failure into a cascade. [`lock`] recovers the guard instead.
//!
//! `adamove-lint` (rule `panic-path`) keeps ad-hoc `.lock().unwrap()`
//! out of the panic-free serving modules; this helper is the shared
//! replacement.

use std::sync::{Mutex, MutexGuard};

/// Lock `m`, recovering the guard from a poisoned mutex instead of
/// panicking (see the [module docs](self) for why that is sound here).
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().expect("first lock cannot be poisoned");
            panic!("poison the mutex");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 7);
        *lock(&m) = 8;
        assert_eq!(*lock(&m), 8);
    }
}
