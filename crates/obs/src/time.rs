//! Wall-clock discipline: the sanctioned monotonic-time seam.
//!
//! Scattered `Instant::now()` reads are how wall-clock nondeterminism
//! leaks into adaptation and evaluation code — exactly the paths whose
//! outputs the testkit pins with golden traces. `adamove-lint` (rule
//! `instant-now`) therefore bans direct `Instant::now()` outside the
//! observability and bench layers; code that times itself *for
//! telemetry* uses a [`Stopwatch`] instead. The type is a thin wrapper,
//! but the indirection keeps every wall-clock read attributable: a
//! `Stopwatch` can only measure a duration, never inject "the current
//! time" into data that should be a pure function of its inputs.

use std::time::{Duration, Instant};

/// A running monotonic stopwatch, started at construction.
///
/// ```
/// let sw = adamove_obs::Stopwatch::start();
/// let _elapsed_ns: u64 = sw.elapsed_ns(); // feed a latency histogram
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    #[must_use]
    pub fn start() -> Self {
        Self {
            started: Instant::now(),
        }
    }

    /// Wall-clock time elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX` — the unit latency
    /// histograms record (`*_latency_ns`).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone_nonnegative() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
    }

    #[test]
    fn elapsed_duration_and_ns_agree() {
        let sw = Stopwatch::start();
        while sw.elapsed_ns() < 2_000_000 {
            std::hint::spin_loop();
        }
        assert!(sw.elapsed() >= Duration::from_millis(2));
        assert!(sw.elapsed_ns() >= 2_000_000);
    }
}
