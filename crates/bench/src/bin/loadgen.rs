//! Open-loop load generator for the `adamove-serve` TCP front-end.
//!
//! Simulates a city of distinct users issuing check-ins and next-location
//! queries with Poisson arrivals modulated by a diurnal curve, over real
//! loopback TCP connections. *Open-loop* means arrivals are scheduled by
//! the clock, not by completions: each request's latency is measured from
//! its **scheduled** arrival time, so server-side queueing shows up as
//! tail latency instead of silently slowing the offered rate
//! (coordinated omission).
//!
//! The run gates on the serving SLO, not throughput alone: it exits
//! nonzero when predict p99 exceeds `--slo-p99-ms`, when sustained
//! predict throughput falls below `--min-predict-rate`, or when any
//! *unexpected* error comes back (typed `Shed`/`Busy` replies are
//! expected under overload and are reported as shed-rate instead).
//! Results land in `BENCH_serving.json` as `loadgen_*` fields, merged
//! alongside the server's own `serve_*` counters without disturbing the
//! other bench families.
//!
//! ```text
//! cargo run --release -p adamove-bench --bin loadgen -- --quick
//! cargo run --release -p adamove-bench --bin loadgen -- \
//!     --rate 4000 --duration-secs 30 --users 1000000 --connections 8
//! ```
//!
//! By default the generator starts an in-process server on a free
//! loopback port (so CI needs no orchestration); `--addr` targets an
//! already-running `adamove_serve` daemon instead.

use adamove::{AdaMoveConfig, EngineConfig, LightMob, RecoveryConfig, ShardedEngine};
use adamove_autograd::ParamStore;
use adamove_bench::report::merge_serving_metrics;
use adamove_obs::{labeled, Registry};
use adamove_serve::{serve, AdmissionConfig, Client, ClientError, ErrorCode, ServeConfig};
use adamove_tensor::det::DetRng;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "loadgen — open-loop load generator for adamove-serve

USAGE:
    loadgen [OPTIONS]

OPTIONS:
    --rate <R>             offered arrivals/sec across all connections (default 4000)
    --duration-secs <S>    measured run length (default 15)
    --users <N>            distinct user-id space (default 1000000)
    --hot-users <N>        hot-set size receiving 90% of traffic (default 10000)
    --connections <C>      client connections = sender threads (default 4)
    --shards <N>           engine shards for the in-process server (default 2)
    --locations <N>        location-id space (default 200)
    --predict-frac <F>     fraction of arrivals that are predicts (default 0.7)
    --seed <N>             workload seed (default 42)
    --addr <ADDR>          target an external server instead of in-process
    --slo-p99-ms <MS>      predict p99 SLO gate (default 10)
    --min-predict-rate <R> sustained predicts/sec gate (default 2000)
    --metrics <PATH>       merge results into PATH (default BENCH_serving.json)
    --no-metrics           skip the BENCH_serving.json merge
    --quick                CI smoke: 3s run, 3500/s, 100k users, gates on
    -h, --help             print this help
";

struct Args {
    rate: f64,
    duration_secs: f64,
    users: u32,
    hot_users: u32,
    connections: usize,
    shards: usize,
    locations: u32,
    predict_frac: f64,
    seed: u64,
    addr: Option<String>,
    slo_p99_ms: f64,
    min_predict_rate: f64,
    metrics: Option<String>,
    write_metrics: bool,
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad value {s:?} for {flag}\n\n{USAGE}");
        std::process::exit(2);
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        rate: 4000.0,
        duration_secs: 15.0,
        users: 1_000_000,
        hot_users: 10_000,
        connections: 4,
        shards: 2,
        locations: 200,
        predict_frac: 0.7,
        seed: 42,
        addr: None,
        slo_p99_ms: 10.0,
        min_predict_rate: 2000.0,
        metrics: None,
        write_metrics: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}\n\n{USAGE}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--rate" => args.rate = parse_num(&value("--rate"), "--rate"),
            "--duration-secs" => {
                args.duration_secs = parse_num(&value("--duration-secs"), "--duration-secs")
            }
            "--users" => args.users = parse_num(&value("--users"), "--users"),
            "--hot-users" => args.hot_users = parse_num(&value("--hot-users"), "--hot-users"),
            "--connections" => {
                args.connections = parse_num(&value("--connections"), "--connections")
            }
            "--shards" => args.shards = parse_num(&value("--shards"), "--shards"),
            "--locations" => args.locations = parse_num(&value("--locations"), "--locations"),
            "--predict-frac" => {
                args.predict_frac = parse_num(&value("--predict-frac"), "--predict-frac")
            }
            "--seed" => args.seed = parse_num(&value("--seed"), "--seed"),
            "--addr" => args.addr = Some(value("--addr")),
            "--slo-p99-ms" => args.slo_p99_ms = parse_num(&value("--slo-p99-ms"), "--slo-p99-ms"),
            "--min-predict-rate" => {
                args.min_predict_rate =
                    parse_num(&value("--min-predict-rate"), "--min-predict-rate")
            }
            "--metrics" => args.metrics = Some(value("--metrics")),
            "--no-metrics" => args.write_metrics = false,
            "--quick" => {
                args.rate = 3500.0;
                args.duration_secs = 3.0;
                args.users = 100_000;
                args.hot_users = 2_000;
                args.connections = 4;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Diurnal modulation of the base rate at relative time `frac ∈ [0,1]`:
/// one "day" spanning the run, trough 0.6× at the edges, peak 1.4× at
/// midday, mean 1.0 (∫ 0.6 + 0.8·sin² = 1.0), so `--rate` stays the
/// average offered rate.
fn diurnal(frac: f64) -> f64 {
    let s = (std::f64::consts::PI * frac).sin();
    0.6 + 0.8 * s * s
}

/// Exponential inter-arrival sample at `rate` (events/sec), in seconds.
fn exp_sample(rng: &mut DetRng, rate: f64) -> f64 {
    // next_f64 ∈ [0,1); flip to (0,1] so ln never sees zero.
    let u = 1.0 - rng.next_f64();
    -u.ln() / rate
}

#[derive(Default)]
struct SenderStats {
    predicts_ok: u64,
    predicts_no_window: u64,
    observes_ok: u64,
    sheds: u64,
    unexpected_errors: u64,
    unexpected_sample: Option<String>,
    /// (latency_ns, was_predict) per completed request.
    latencies: Vec<(u64, bool)>,
}

struct Workload {
    users: u32,
    hot_users: u32,
    locations: u32,
    predict_frac: f64,
    rate_per_conn: f64,
    duration: Duration,
}

/// One open-loop sender: schedules arrivals on the wall clock and pushes
/// them down a single connection, measuring from the scheduled instant.
fn sender(addr: &str, wl: &Workload, mut rng: DetRng, start: Instant) -> SenderStats {
    let mut stats = SenderStats::default();
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            stats.unexpected_errors += 1;
            stats.unexpected_sample = Some(format!("connect: {e}"));
            return stats;
        }
    };
    let _ = client.set_timeout(Some(Duration::from_secs(10)));
    let mut scheduled = 0.0f64; // seconds since start
                                // Virtual mobility clock: hours advance with event count so windows
                                // stay live (the engine evicts stale sessions by query time).
    let mut virtual_secs: i64 = 0;
    loop {
        let frac = (scheduled / wl.duration.as_secs_f64()).min(1.0);
        scheduled += exp_sample(&mut rng, wl.rate_per_conn * diurnal(frac));
        if scheduled >= wl.duration.as_secs_f64() {
            return stats;
        }
        let scheduled_at = start + Duration::from_secs_f64(scheduled);
        if let Some(wait) = scheduled_at.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        // 90% of traffic on the hot set, the rest across the full space.
        let user = if rng.chance(0.9) {
            rng.below(wl.hot_users as usize) as u32
        } else {
            wl.hot_users + rng.below((wl.users - wl.hot_users) as usize) as u32
        };
        virtual_secs += 360; // ~10 events/virtual-hour keeps windows live
        let is_predict = rng.chance(wl.predict_frac);
        let sent = Instant::now();
        let outcome = if is_predict {
            client.predict(user, virtual_secs, false).map(|r| match r {
                Some(_) => stats.predicts_ok += 1,
                None => stats.predicts_no_window += 1,
            })
        } else {
            let loc = rng.below(wl.locations as usize) as u32;
            client
                .observe(user, loc, virtual_secs)
                .map(|()| stats.observes_ok += 1)
        };
        match outcome {
            Ok(()) => {
                // Latency from the *scheduled* arrival: sender-side slip
                // (a late wakeup or a previous slow reply) counts too.
                let lat = Instant::now().duration_since(scheduled_at.min(sent));
                stats.latencies.push((lat.as_nanos() as u64, is_predict));
            }
            Err(ClientError::Server {
                code: ErrorCode::Shed | ErrorCode::Busy,
                ..
            }) => {
                stats.sheds += 1;
            }
            Err(e) => {
                stats.unexpected_errors += 1;
                if stats.unexpected_sample.is_none() {
                    stats.unexpected_sample = Some(e.to_string());
                }
                // Transport errors end this connection's usefulness.
                if matches!(e, ClientError::Io(_) | ClientError::Protocol(_)) {
                    return stats;
                }
            }
        }
    }
}

fn main() {
    let args = parse_args();

    // In-process server unless --addr points elsewhere.
    let mut in_process = None;
    let addr = match &args.addr {
        Some(a) => a.clone(),
        None => {
            let mut rng = StdRng::seed_from_u64(args.seed);
            let mut store = ParamStore::new();
            let model = LightMob::new(
                &mut store,
                AdaMoveConfig::tiny(),
                args.locations,
                args.users,
                &mut rng,
            );
            let engine = Arc::new(ShardedEngine::new(
                Arc::new(model),
                Arc::new(store),
                EngineConfig {
                    shards: args.shards,
                    recovery: Some(RecoveryConfig {
                        supervise_interval: Some(Duration::from_millis(20)),
                        ..RecoveryConfig::default()
                    }),
                    ..EngineConfig::default()
                },
            ));
            let handle = serve(
                engine,
                ServeConfig {
                    workers: args.connections.max(1),
                    admission: Some(AdmissionConfig::default()),
                    ..ServeConfig::default()
                },
            )
            .expect("failed to start in-process server");
            let addr = handle.addr().to_string();
            in_process = Some(handle);
            addr
        }
    };
    println!(
        "loadgen: {} arrivals/s ({}% predicts) for {}s → {} | {} users ({} hot) over {} connections",
        args.rate,
        (args.predict_frac * 100.0) as u32,
        args.duration_secs,
        addr,
        args.users,
        args.hot_users,
        args.connections,
    );

    let wl = Workload {
        users: args.users,
        hot_users: args.hot_users.min(args.users),
        locations: args.locations,
        predict_frac: args.predict_frac,
        rate_per_conn: args.rate / args.connections.max(1) as f64,
        duration: Duration::from_secs_f64(args.duration_secs),
    };
    let wl = Arc::new(wl);
    let start = Instant::now();
    let mut senders = Vec::new();
    let mut seed_rng = DetRng::new(args.seed);
    for c in 0..args.connections.max(1) {
        let wl = Arc::clone(&wl);
        let addr = addr.clone();
        let rng = seed_rng.fork(c as u64);
        senders.push(
            std::thread::Builder::new()
                .name(format!("loadgen-{c}"))
                .spawn(move || sender(&addr, &wl, rng, start))
                .expect("spawn sender"),
        );
    }
    let mut total = SenderStats::default();
    for s in senders {
        let stats = s.join().expect("sender panicked");
        total.predicts_ok += stats.predicts_ok;
        total.predicts_no_window += stats.predicts_no_window;
        total.observes_ok += stats.observes_ok;
        total.sheds += stats.sheds;
        total.unexpected_errors += stats.unexpected_errors;
        if total.unexpected_sample.is_none() {
            total.unexpected_sample = stats.unexpected_sample;
        }
        total.latencies.extend(stats.latencies);
    }
    let elapsed = start.elapsed().as_secs_f64().min(args.duration_secs);

    // Server-side ground truth: the in-process registry when we own the
    // server, otherwise scraped over the wire with a SNAPSHOT frame so
    // `--addr` runs persist the same shed/transition counters.
    let mut serve_fields: Vec<(String, f64)> = Vec::new();
    if let Some(handle) = &in_process {
        let snap = handle.registry().snapshot();
        serve_fields.extend(
            snap.counters
                .iter()
                .filter(|(k, _)| k.starts_with("serve_"))
                .map(|(k, v)| (k.clone(), *v as f64)),
        );
    } else if let Ok(json) = Client::connect(addr.as_str()).and_then(|mut c| c.snapshot()) {
        if let Ok(fields) = adamove_testkit::json::parse_flat(&json) {
            serve_fields.extend(fields.into_iter().filter_map(|(k, v)| {
                (k.starts_with("serve_") && k.contains("_total"))
                    .then(|| v.as_num(&k).ok().map(|n| (k, n)))
                    .flatten()
            }));
        }
    }
    let sum_of = |prefix: &str| -> f64 {
        serve_fields
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    };
    let mut serve_shed = sum_of("serve_shed_total");
    let serve_accepted = sum_of("serve_accepted_total");
    let serve_transitions = sum_of("serve_shed_transitions_total");
    if serve_fields.is_empty() {
        // No server-side view at all: fall back to client-observed sheds.
        serve_shed = total.sheds as f64;
    }
    let attempts = serve_accepted + serve_shed;
    let shed_rate = if attempts > 0.0 {
        serve_shed / attempts
    } else {
        0.0
    };

    // Percentiles over exact recorded latencies (not bucketed).
    let mut predict_ns: Vec<u64> = total
        .latencies
        .iter()
        .filter(|(_, p)| *p)
        .map(|(ns, _)| *ns)
        .collect();
    predict_ns.sort_unstable();
    let pct = |q: f64| -> f64 {
        if predict_ns.is_empty() {
            return 0.0;
        }
        let rank = ((q * predict_ns.len() as f64).ceil() as usize).clamp(1, predict_ns.len());
        predict_ns[rank - 1] as f64
    };
    let predicts = total.predicts_ok + total.predicts_no_window;
    let predict_rate = predicts as f64 / elapsed;
    let (p50, p95, p99) = (pct(0.50), pct(0.95), pct(0.99));

    println!(
        "\ncompleted: {} predicts ({} with windows) + {} observes in {elapsed:.2}s",
        predicts, total.predicts_ok, total.observes_ok
    );
    println!(
        "predict throughput {predict_rate:.0}/s | latency p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms",
        p50 / 1e6,
        p95 / 1e6,
        p99 / 1e6
    );
    println!(
        "shed rate {:.4} ({} shed / {} admission decisions, {} shed transitions) | unexpected errors {}",
        shed_rate, serve_shed as u64, attempts as u64, serve_transitions as u64,
        total.unexpected_errors
    );
    if let Some(sample) = &total.unexpected_sample {
        println!("  first unexpected error: {sample}");
    }

    if args.write_metrics {
        let registry = Registry::new();
        let g = |name: &str, v: f64| registry.gauge(name).set(v);
        g("loadgen_offered_rate", args.rate);
        g("loadgen_predict_rate", predict_rate);
        g("loadgen_shed_rate", shed_rate);
        g("loadgen_users", args.users as f64);
        g("loadgen_connections", args.connections as f64);
        g("loadgen_duration_secs", elapsed);
        g(
            &labeled("loadgen_predict_latency_ms", &[("q", "p50")]),
            p50 / 1e6,
        );
        g(
            &labeled("loadgen_predict_latency_ms", &[("q", "p95")]),
            p95 / 1e6,
        );
        g(
            &labeled("loadgen_predict_latency_ms", &[("q", "p99")]),
            p99 / 1e6,
        );
        registry.counter("loadgen_predicts_total").add(predicts);
        registry
            .counter("loadgen_observes_total")
            .add(total.observes_ok);
        registry
            .counter("loadgen_sheds_total")
            .add(serve_shed as u64);
        registry
            .counter("loadgen_unexpected_errors_total")
            .add(total.unexpected_errors);
        // Carry the server's own counters alongside (per-shard labeled
        // keys plus unlabeled cross-shard aggregates), so the persisted
        // file answers "did the server shed, and how often did the
        // policy flip" without a live registry.
        for (k, v) in &serve_fields {
            registry.counter(k).add(*v as u64);
        }
        registry.counter("serve_shed_total").add(serve_shed as u64);
        registry
            .counter("serve_shed_transitions_total")
            .add(serve_transitions as u64);
        let path = args.metrics.as_ref().map(std::path::Path::new);
        merge_serving_metrics(&registry, &["loadgen_", "serve_"], path);
    }

    if let Some(handle) = in_process {
        let engine = handle.stop();
        if let Some(engine) = Arc::into_inner(engine) {
            drop(engine.shutdown());
        }
    }

    // SLO gate.
    let mut failures = Vec::new();
    if p99 / 1e6 > args.slo_p99_ms {
        failures.push(format!(
            "predict p99 {:.3} ms exceeds SLO {:.1} ms",
            p99 / 1e6,
            args.slo_p99_ms
        ));
    }
    if predict_rate < args.min_predict_rate {
        failures.push(format!(
            "predict throughput {predict_rate:.0}/s below gate {:.0}/s",
            args.min_predict_rate
        ));
    }
    if total.unexpected_errors > 0 {
        failures.push(format!("{} unexpected errors", total.unexpected_errors));
    }
    if failures.is_empty() {
        println!(
            "\nSLO gate: PASS (p99 ≤ {} ms, ≥ {:.0} predicts/s, 0 unexpected errors)",
            args.slo_p99_ms, args.min_predict_rate
        );
    } else {
        for f in &failures {
            eprintln!("SLO gate FAIL: {f}");
        }
        std::process::exit(1);
    }
}
