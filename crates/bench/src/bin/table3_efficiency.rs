//! E9 — Fig. 9 + Table III: AdaMove vs DeepTTA accuracy and efficiency.
//!
//! DeepTTA = DeepMove (two-branch, history encoded at inference) + the same
//! PTTA module. AdaMove should match or beat DeepTTA's accuracy (Fig. 9)
//! while being substantially faster per sample because it never encodes
//! the historical trajectory at test time (Table III: paper improvements
//! 30.4% NYC / 10.1% TKY / 45.2% LYMOB; biggest where histories are
//! densest).
//!
//! Usage: `cargo run --release -p adamove-bench --bin table3_efficiency
//!         [--scale small|paper] [--seed N] [--city ...] [--quick] [--threads N]
//!         [--batch N] [--metrics path.json]`
//!
//! AdaMove evaluates through the batched device path (`--batch` same-length
//! samples fused per forward; bit-identical to per-sample by the testkit
//! oracles), DeepTTA through the per-sample path — so the Table III
//! latency gap reflects both the architectural saving (no history encode)
//! and the serving-path batching AdaMove's recent-only design enables.
//! Per-sample latencies measure compute cost; the throughput / p50 / p99
//! lines reflect the `--threads` fan-out and `--batch` fusion.
//! Serving telemetry (per-phase latency percentiles, throughput, thread
//! count) is exported through the obs registry to `--metrics`, defaulting
//! to `BENCH_serving.json` at the workspace root.

use adamove::{
    evaluate_batched, evaluate_fn_par, shard_of, AdaMoveConfig, Disturbance, DurabilityConfig,
    EncoderKind, EngineConfig, EvalOutcome, FaultAction, InferenceMode, LightMob, Metrics, Ptta,
    PttaConfig, RecoveryConfig, RequestKind, ShardedEngine,
};
use adamove_autograd::ParamStore;
use adamove_baselines::DeepMove;
use adamove_bench::harness::{prepare_city, sample_caps, train_adamove, ExperimentArgs};
use adamove_bench::report::{render_table, write_json, write_serving_metrics};
use adamove_mobility::{CityPreset, Point, Timestamp, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct CityResult {
    city: String,
    adamove: Metrics,
    deeptta: Metrics,
    adamove_latency_us: f64,
    deeptta_latency_us: f64,
    improvement_pct: f64,
    paper_improvement_pct: f64,
}

fn paper_improvement(preset: CityPreset) -> f64 {
    match preset {
        CityPreset::Nyc => 30.4,
        CityPreset::Tky => 10.1,
        CityPreset::Lymob => 45.2,
    }
}

/// One-shot kill for the recovery drill: panics `shard` at request `seq`.
/// The engine's per-slot sequence counter survives respawns, so the fault
/// fires exactly once per engine.
struct KillAt {
    shard: usize,
    seq: u64,
}

impl Disturbance for KillAt {
    fn action(&self, shard: usize, seq: u64, _kind: RequestKind) -> FaultAction {
        if shard == self.shard && seq == self.seq {
            FaultAction::PanicShard
        } else {
            FaultAction::None
        }
    }
}

/// Recovery drill: push a deterministic observe/predict workload through a
/// self-healing [`ShardedEngine`] whose busiest-hash shard is killed
/// mid-run, and report throughput plus the recovery counters. This is the
/// robustness-overhead row of `BENCH_serving.json` — the same trajectory
/// file the accuracy/latency phases land in.
fn recovery_drill(threads: usize) -> Vec<(&'static str, f64)> {
    const LOCATIONS: u32 = 200;
    const USERS: u32 = 64;
    const STEPS: usize = 2_000;
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig::tiny(),
        LOCATIONS,
        USERS,
        &mut rng,
    );
    let shards = threads.max(1);
    let engine = ShardedEngine::with_disturbance(
        Arc::new(model),
        Arc::new(store),
        EngineConfig {
            shards,
            context_sessions: 5,
            session_hours: 72,
            ptta: PttaConfig::default(),
            recovery: Some(RecoveryConfig::default()),
            ..EngineConfig::default()
        },
        // Kill the shard that owns user 0 a quarter of the way in.
        Some(Arc::new(KillAt {
            shard: shard_of(UserId(0), shards),
            seq: (STEPS / (4 * shards)) as u64,
        })),
    );
    let started = Instant::now();
    let mut requests = 0u64;
    for i in 0..STEPS {
        let user = UserId(rng.gen_range(0..USERS));
        let point = Point::new(rng.gen_range(0..LOCATIONS), Timestamp::from_hours(i as i64));
        engine.observe(user, point);
        requests += 1;
        if i % 4 == 3 {
            let _ = engine.predict(user, point.time);
            requests += 1;
        }
    }
    let rps = requests as f64 / started.elapsed().as_secs_f64();
    let snap = engine.snapshot();
    let report = engine.shutdown();
    println!(
        "Recovery drill ({shards} shards, {requests} requests): {rps:.0} req/s, \
         {} respawn(s), {} replayed, {} degraded",
        snap.respawns, snap.replayed_observes, snap.degraded_predictions
    );
    assert!(report.healthy(), "recovery drill must end healthy");
    vec![
        ("bench_recovery_rps", rps),
        ("bench_respawns", snap.respawns as f64),
        ("bench_replayed_observes", snap.replayed_observes as f64),
        (
            "bench_degraded_predictions",
            snap.degraded_predictions as f64,
        ),
    ]
}

/// Restart drill: write a durable journal under load (batched fsync, the
/// production default), "crash" without a checkpoint, then time how long
/// the cold start takes to replay the whole stream back into memory.
/// `bench_restart_restore_ms` is the wall-clock cost of the second
/// engine's construction-plus-replay-barrier; `bench_replayed_records`
/// confirms every pre-crash observe came back through the journal.
fn restart_drill(threads: usize) -> Vec<(&'static str, f64)> {
    const LOCATIONS: u32 = 200;
    const USERS: u32 = 64;
    const STEPS: usize = 2_000;
    let dir = std::env::temp_dir().join(format!("adamove-bench-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let shards = threads.max(1);
    let mut rng = StdRng::seed_from_u64(17);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig::tiny(),
        LOCATIONS,
        USERS,
        &mut rng,
    );
    let (model, store) = (Arc::new(model), Arc::new(store));
    let config = || EngineConfig {
        shards,
        context_sessions: 5,
        session_hours: 72,
        ptta: PttaConfig::default(),
        recovery: Some(RecoveryConfig {
            // No durable checkpoint fits under STEPS: the restore below
            // measures pure journal replay, the worst cold-start case.
            checkpoint_interval: 10 * STEPS,
            durability: Some(DurabilityConfig::new(dir.clone())),
            ..RecoveryConfig::default()
        }),
        ..EngineConfig::default()
    };

    {
        let engine = ShardedEngine::new(Arc::clone(&model), Arc::clone(&store), config());
        for i in 0..STEPS {
            let user = UserId(rng.gen_range(0..USERS));
            let point = Point::new(rng.gen_range(0..LOCATIONS), Timestamp::from_hours(i as i64));
            engine.observe(user, point);
        }
        // Crash, not drain: shutdown without checkpoint_all leaves the
        // whole stream in the journal.
        engine.shutdown();
    }

    let started = Instant::now();
    let restored = ShardedEngine::new(Arc::clone(&model), Arc::clone(&store), config());
    restored.flush();
    let restore_ms = started.elapsed().as_secs_f64() * 1000.0;
    let replayed = restored.snapshot().replayed_observes;
    restored.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "Restart drill ({shards} shards): replayed {replayed} record(s) in {restore_ms:.1} ms"
    );
    assert_eq!(replayed, STEPS, "restart drill must replay every observe");
    vec![
        ("bench_restart_restore_ms", restore_ms),
        ("bench_replayed_records", replayed as f64),
    ]
}

fn main() {
    let args = ExperimentArgs::parse();
    let (max_train, max_test) = sample_caps(args.scale);
    let mut results = Vec::new();
    let mut serving: Vec<(String, EvalOutcome)> = Vec::new();

    for preset in args.cities() {
        let city = prepare_city(preset, args.scale, args.seed, max_train, max_test);
        println!("\n=== {} ===\n", city.stats.name);

        // AdaMove: LightMob + PTTA (recent-only inference).
        eprintln!("training AdaMove...");
        let ada = train_adamove(&city, EncoderKind::Lstm, &args, None);
        let ada_out = evaluate_batched(
            &ada.model,
            &ada.store,
            &city.test,
            &InferenceMode::Ptta(PttaConfig::default()),
            args.threads,
            args.batch,
        );

        // DeepTTA: DeepMove + PTTA (history encoded per test sample).
        eprintln!("training DeepMove (for DeepTTA)...");
        let mut rng = StdRng::seed_from_u64(args.seed);
        let mut dm_store = ParamStore::new();
        let deepmove = DeepMove::new(
            &mut dm_store,
            args.model_config(0.0),
            city.processed.num_locations,
            city.processed.num_users() as u32,
            &mut rng,
        );
        deepmove.train(
            &mut dm_store,
            &city.train,
            &city.val,
            args.training_config(),
        );
        let ptta = Ptta::new(PttaConfig::default());
        let dt_out = evaluate_fn_par(&city.test, args.threads, |s| {
            ptta.predict_scores(&deepmove, &dm_store, s)
        });

        let improvement =
            (dt_out.avg_latency_us - ada_out.avg_latency_us) / dt_out.avg_latency_us * 100.0;

        let rows = vec![
            vec![
                "DeepTTA".to_string(),
                format!("{:.4}", dt_out.metrics.rec1),
                format!("{:.4}", dt_out.metrics.rec5),
                format!("{:.4}", dt_out.metrics.rec10),
                format!("{:.4}", dt_out.metrics.mrr),
                format!("{:.1}", dt_out.avg_latency_us / 1000.0),
            ],
            vec![
                "AdaMove".to_string(),
                format!("{:.4}", ada_out.metrics.rec1),
                format!("{:.4}", ada_out.metrics.rec5),
                format!("{:.4}", ada_out.metrics.rec10),
                format!("{:.4}", ada_out.metrics.mrr),
                format!("{:.1}", ada_out.avg_latency_us / 1000.0),
            ],
        ];
        println!(
            "{}",
            render_table(
                &["Method", "Rec@1", "Rec@5", "Rec@10", "MRR", "ms/sample"],
                &rows
            )
        );
        println!(
            "Inference speedup: {improvement:.1}% (paper: {:.1}%)",
            paper_improvement(preset)
        );
        println!(
            "DeepTTA serving ({} threads): {}",
            args.threads,
            dt_out.latency.row()
        );
        println!(
            "AdaMove serving ({} threads, batch {}): {}\n",
            args.threads,
            args.batch,
            ada_out.latency.row()
        );

        results.push(CityResult {
            city: city.stats.name.clone(),
            adamove: ada_out.metrics,
            deeptta: dt_out.metrics,
            adamove_latency_us: ada_out.avg_latency_us,
            deeptta_latency_us: dt_out.avg_latency_us,
            improvement_pct: improvement,
            paper_improvement_pct: paper_improvement(preset),
        });
        serving.push((format!("adamove:{}", city.stats.name), ada_out));
        serving.push((format!("deeptta:{}", city.stats.name), dt_out));
    }

    write_json("table3_efficiency", &results);
    let mut extras = recovery_drill(args.threads);
    extras.extend(restart_drill(args.threads));
    let phases: Vec<(String, &EvalOutcome)> = serving.iter().map(|(n, o)| (n.clone(), o)).collect();
    write_serving_metrics(args.threads, &phases, &extras, args.metrics.as_deref());
}
