//! E9 — Fig. 9 + Table III: AdaMove vs DeepTTA accuracy and efficiency.
//!
//! DeepTTA = DeepMove (two-branch, history encoded at inference) + the same
//! PTTA module. AdaMove should match or beat DeepTTA's accuracy (Fig. 9)
//! while being substantially faster per sample because it never encodes
//! the historical trajectory at test time (Table III: paper improvements
//! 30.4% NYC / 10.1% TKY / 45.2% LYMOB; biggest where histories are
//! densest).
//!
//! Usage: `cargo run --release -p adamove-bench --bin table3_efficiency
//!         [--scale small|paper] [--seed N] [--city ...] [--quick] [--threads N]
//!         [--metrics path.json]`
//!
//! Per-sample latencies measure compute cost and are thread-independent;
//! the throughput / p50 / p99 lines reflect the `--threads` fan-out.
//! Serving telemetry (per-phase latency percentiles, throughput, thread
//! count) is exported through the obs registry to `--metrics`, defaulting
//! to `BENCH_serving.json` at the workspace root.

use adamove::{
    evaluate_fn_par, evaluate_par, EncoderKind, EvalOutcome, InferenceMode, Metrics, Ptta,
    PttaConfig,
};
use adamove_autograd::ParamStore;
use adamove_baselines::DeepMove;
use adamove_bench::harness::{prepare_city, sample_caps, train_adamove, ExperimentArgs};
use adamove_bench::report::{render_table, write_json, write_serving_metrics};
use adamove_mobility::CityPreset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct CityResult {
    city: String,
    adamove: Metrics,
    deeptta: Metrics,
    adamove_latency_us: f64,
    deeptta_latency_us: f64,
    improvement_pct: f64,
    paper_improvement_pct: f64,
}

fn paper_improvement(preset: CityPreset) -> f64 {
    match preset {
        CityPreset::Nyc => 30.4,
        CityPreset::Tky => 10.1,
        CityPreset::Lymob => 45.2,
    }
}

fn main() {
    let args = ExperimentArgs::parse();
    let (max_train, max_test) = sample_caps(args.scale);
    let mut results = Vec::new();
    let mut serving: Vec<(String, EvalOutcome)> = Vec::new();

    for preset in args.cities() {
        let city = prepare_city(preset, args.scale, args.seed, max_train, max_test);
        println!("\n=== {} ===\n", city.stats.name);

        // AdaMove: LightMob + PTTA (recent-only inference).
        eprintln!("training AdaMove...");
        let ada = train_adamove(&city, EncoderKind::Lstm, &args, None);
        let ada_out = evaluate_par(
            &ada.model,
            &ada.store,
            &city.test,
            &InferenceMode::Ptta(PttaConfig::default()),
            args.threads,
        );

        // DeepTTA: DeepMove + PTTA (history encoded per test sample).
        eprintln!("training DeepMove (for DeepTTA)...");
        let mut rng = StdRng::seed_from_u64(args.seed);
        let mut dm_store = ParamStore::new();
        let deepmove = DeepMove::new(
            &mut dm_store,
            args.model_config(0.0),
            city.processed.num_locations,
            city.processed.num_users() as u32,
            &mut rng,
        );
        deepmove.train(
            &mut dm_store,
            &city.train,
            &city.val,
            args.training_config(),
        );
        let ptta = Ptta::new(PttaConfig::default());
        let dt_out = evaluate_fn_par(&city.test, args.threads, |s| {
            ptta.predict_scores(&deepmove, &dm_store, s)
        });

        let improvement =
            (dt_out.avg_latency_us - ada_out.avg_latency_us) / dt_out.avg_latency_us * 100.0;

        let rows = vec![
            vec![
                "DeepTTA".to_string(),
                format!("{:.4}", dt_out.metrics.rec1),
                format!("{:.4}", dt_out.metrics.rec5),
                format!("{:.4}", dt_out.metrics.rec10),
                format!("{:.4}", dt_out.metrics.mrr),
                format!("{:.1}", dt_out.avg_latency_us / 1000.0),
            ],
            vec![
                "AdaMove".to_string(),
                format!("{:.4}", ada_out.metrics.rec1),
                format!("{:.4}", ada_out.metrics.rec5),
                format!("{:.4}", ada_out.metrics.rec10),
                format!("{:.4}", ada_out.metrics.mrr),
                format!("{:.1}", ada_out.avg_latency_us / 1000.0),
            ],
        ];
        println!(
            "{}",
            render_table(
                &["Method", "Rec@1", "Rec@5", "Rec@10", "MRR", "ms/sample"],
                &rows
            )
        );
        println!(
            "Inference speedup: {improvement:.1}% (paper: {:.1}%)",
            paper_improvement(preset)
        );
        println!(
            "DeepTTA serving ({} threads): {}",
            args.threads,
            dt_out.latency.row()
        );
        println!(
            "AdaMove serving ({} threads): {}\n",
            args.threads,
            ada_out.latency.row()
        );

        results.push(CityResult {
            city: city.stats.name.clone(),
            adamove: ada_out.metrics,
            deeptta: dt_out.metrics,
            adamove_latency_us: ada_out.avg_latency_us,
            deeptta_latency_us: dt_out.avg_latency_us,
            improvement_pct: improvement,
            paper_improvement_pct: paper_improvement(preset),
        });
        serving.push((format!("adamove:{}", city.stats.name), ada_out));
        serving.push((format!("deeptta:{}", city.stats.name), dt_out));
    }

    write_json("table3_efficiency", &results);
    let phases: Vec<(String, &EvalOutcome)> = serving.iter().map(|(n, o)| (n.clone(), o)).collect();
    write_serving_metrics(args.threads, &phases, args.metrics.as_deref());
}
