//! E10 — Fig. 10: case study of a user whose mobility distribution shifts.
//!
//! The paper picks an NYC user whose check-ins move to a new region after
//! Jan 1st 2013 and shows AdaMove predicting a post-shift location that
//! DeepMove keeps missing. Here we find the test user with the largest
//! train-vs-test location-set divergence, pick test trajectories whose
//! target is a *new* (unseen in training) location, and compare AdaMove
//! against DeepMove on them.
//!
//! Usage: `cargo run --release -p adamove-bench --bin fig10_case_study
//!         [--scale small|paper] [--seed N] [--quick]`

use adamove::{EncoderKind, Ptta, PttaConfig};
use adamove_autograd::ParamStore;
use adamove_baselines::DeepMove;
use adamove_bench::harness::{prepare_city, sample_caps, train_adamove, ExperimentArgs};
use adamove_bench::report::write_json;
use adamove_mobility::{CityPreset, Sample};
use adamove_tensor::stats::rank_of;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::collections::HashSet;

#[derive(Serialize)]
struct TrajectoryCase {
    target: u32,
    target_is_new_location: bool,
    adamove_rank: usize,
    deepmove_rank: usize,
    adamove_hit: bool,
    deepmove_hit: bool,
}

#[derive(Serialize)]
struct Record {
    city: String,
    user: u32,
    new_location_ratio: f64,
    cases: Vec<TrajectoryCase>,
}

fn main() {
    let args = ExperimentArgs::parse();
    let (max_train, max_test) = sample_caps(args.scale);
    let preset = args.city.unwrap_or(CityPreset::Nyc);
    let city = prepare_city(preset, args.scale, args.seed, max_train, max_test);
    println!("=== Fig. 10 case study on {} ===\n", city.stats.name);

    // Find the user with the most shifted test distribution: highest share
    // of test targets never visited in their training region.
    let mut best: Option<(u32, f64)> = None;
    for u in &city.processed.users {
        let (train_r, _, test_r) = adamove_mobility::split::split_sessions(u.sessions.len());
        let train_locs: HashSet<u32> = u.sessions[train_r]
            .iter()
            .flatten()
            .map(|p| p.loc.0)
            .collect();
        let test_points: Vec<u32> = u.sessions[test_r]
            .iter()
            .flatten()
            .map(|p| p.loc.0)
            .collect();
        if test_points.len() < 8 {
            continue;
        }
        let new = test_points
            .iter()
            .filter(|l| !train_locs.contains(l))
            .count();
        let ratio = new as f64 / test_points.len() as f64;
        if best.is_none_or(|(_, r)| ratio > r) {
            best = Some((u.user.0, ratio));
        }
    }
    let (user, ratio) = best.expect("no eligible user");
    println!(
        "picked user {user}: {:.0}% of test check-ins are at locations unseen in training\n",
        ratio * 100.0
    );

    // Train both models.
    eprintln!("training AdaMove...");
    let ada = train_adamove(&city, EncoderKind::Lstm, &args, None);
    eprintln!("training DeepMove...");
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut dm_store = ParamStore::new();
    let deepmove = DeepMove::new(
        &mut dm_store,
        args.model_config(0.0),
        city.processed.num_locations,
        city.processed.num_users() as u32,
        &mut rng,
    );
    deepmove.train(
        &mut dm_store,
        &city.train,
        &city.val,
        args.training_config(),
    );

    // The user's train-region location set, for "new location" labelling.
    let u = &city.processed.users[user as usize];
    let (train_r, _, _) = adamove_mobility::split::split_sessions(u.sessions.len());
    let train_locs: HashSet<u32> = u.sessions[train_r]
        .iter()
        .flatten()
        .map(|p| p.loc.0)
        .collect();

    // Pick up to 4 of the user's test trajectories, preferring shifted
    // targets (the paper randomly picks four whose ground truth is the new
    // location).
    let mut user_samples: Vec<&Sample> = city
        .test
        .iter()
        .filter(|s| s.user.0 == user && s.recent.len() >= 3)
        .collect();
    user_samples.sort_by_key(|s| !train_locs.contains(&s.target.0)); // new targets... keep order
    user_samples.reverse();
    let picked: Vec<&Sample> = user_samples.into_iter().take(4).collect();
    assert!(!picked.is_empty(), "user has no test samples");

    let ptta = Ptta::new(PttaConfig::default());
    let mut cases = Vec::new();
    println!(
        "{:<8} {:<6} {:<14} {:<14} {:<10} {:<10}",
        "target", "new?", "AdaMove rank", "DeepMove rank", "AdaMove", "DeepMove"
    );
    for s in picked {
        let ada_scores = ptta.predict_scores(&ada.model, &ada.store, s);
        let dm_scores = deepmove.predict(&dm_store, s);
        let ada_rank = rank_of(&ada_scores, s.target.index());
        let dm_rank = rank_of(&dm_scores, s.target.index());
        let case = TrajectoryCase {
            target: s.target.0,
            target_is_new_location: !train_locs.contains(&s.target.0),
            adamove_rank: ada_rank,
            deepmove_rank: dm_rank,
            adamove_hit: ada_rank == 1,
            deepmove_hit: dm_rank == 1,
        };
        println!(
            "{:<8} {:<6} {:<14} {:<14} {:<10} {:<10}",
            case.target,
            if case.target_is_new_location {
                "yes"
            } else {
                "no"
            },
            case.adamove_rank,
            case.deepmove_rank,
            if case.adamove_hit { "HIT" } else { "miss" },
            if case.deepmove_hit { "HIT" } else { "miss" }
        );
        cases.push(case);
    }

    let ada_hits = cases.iter().filter(|c| c.adamove_hit).count();
    let dm_hits = cases.iter().filter(|c| c.deepmove_hit).count();
    println!(
        "\nAdaMove correct on {ada_hits}/{} trajectories, DeepMove on {dm_hits}/{} — the paper's\nFig. 10 shape is AdaMove adapting to the new distribution while DeepMove misses.",
        cases.len(),
        cases.len()
    );

    write_json(
        "fig10_case_study",
        &Record {
            city: city.stats.name.clone(),
            user,
            new_location_ratio: ratio,
            cases,
        },
    );
}
