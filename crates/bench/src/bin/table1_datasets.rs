//! E1 — Table I: data statistics after pre-processing.
//!
//! Generates the three synthetic cities, runs the §IV-A pipeline, and
//! prints measured statistics next to the paper's values.
//!
//! Usage: `cargo run --release -p adamove-bench --bin table1_datasets
//!         [--scale small|paper] [--seed N]`

use adamove_bench::harness::{prepare_city, sample_caps, ExperimentArgs};
use adamove_bench::report::{render_table, write_json};
use adamove_mobility::DatasetStats;
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    city: String,
    paper_users: usize,
    paper_locations: usize,
    paper_trajectories: usize,
    measured: DatasetStats,
}

fn paper_row(city: &str) -> (usize, usize, usize) {
    match city {
        "NYC-synth" => (637, 4713, 50_720),
        "TKY-synth" => (1843, 7736, 314_202),
        "LYMOB-synth" => (500, 5906, 467_899),
        _ => (0, 0, 0),
    }
}

fn main() {
    let args = ExperimentArgs::parse();
    let (max_train, max_test) = sample_caps(args.scale);

    println!(
        "Table I: Data Statistics after Pre-processing ({:?} scale)\n",
        args.scale
    );
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for preset in args.cities() {
        let city = prepare_city(preset, args.scale, args.seed, max_train, max_test);
        let s = &city.stats;
        let (pu, pl, pt) = paper_row(&s.name);
        rows.push(vec![
            s.name.clone(),
            format!("{} (paper {})", s.num_users, pu),
            format!("{} (paper {})", s.num_locations, pl),
            format!("{} (paper {})", s.num_trajectories, pt),
            format!("{}", s.num_points),
            format!("{}d", s.time_span_days),
        ]);
        records.push(Record {
            city: s.name.clone(),
            paper_users: pu,
            paper_locations: pl,
            paper_trajectories: pt,
            measured: s.clone(),
        });
    }
    println!(
        "{}",
        render_table(
            &[
                "Dataset",
                "#Users",
                "#Loc.",
                "#Traj.(sessions)",
                "#Points",
                "Span"
            ],
            &rows
        )
    );
    println!("Note: at --scale small populations are reduced; --scale paper matches Table I users/time-span.");
    println!("Synthetic location vocabularies are denser than Foursquare's (see EXPERIMENTS.md).");
    write_json("table1_datasets", &records);
}
