//! E7 — Fig. 7: impact of the knowledge-base capacity `M`.
//!
//! One trained AdaMove per city, evaluated with PTTA capacities
//! `M ∈ {1, 3, 5, 8, 12, 15, 20}`. The paper sees gains up to `M ≈ 3-5`,
//! then gradual degradation on NYC/TKY as low-similarity patterns pollute
//! the knowledge base; LYMOB is insensitive (short span, stable patterns).
//!
//! Usage: `cargo run --release -p adamove-bench --bin fig7_capacity
//!         [--scale small|paper] [--seed N] [--city ...] [--quick]`

use adamove::{evaluate, EncoderKind, InferenceMode, Metrics, PttaConfig};
use adamove_bench::harness::{prepare_city, sample_caps, train_adamove, ExperimentArgs};
use adamove_bench::report::{render_table, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct CityCurve {
    city: String,
    m_values: Vec<usize>,
    metrics: Vec<Metrics>,
}

fn main() {
    let args = ExperimentArgs::parse();
    let (max_train, max_test) = sample_caps(args.scale);
    let m_values = vec![1usize, 3, 5, 8, 12, 15, 20];
    let mut results = Vec::new();

    for preset in args.cities() {
        let city = prepare_city(preset, args.scale, args.seed, max_train, max_test);
        println!("\n=== {} ===\n", city.stats.name);
        eprintln!("training AdaMove...");
        let trained = train_adamove(&city, EncoderKind::Lstm, &args, None);

        let mut metrics = Vec::new();
        for &m in &m_values {
            let out = evaluate(
                &trained.model,
                &trained.store,
                &city.test,
                &InferenceMode::Ptta(PttaConfig {
                    capacity: m,
                    ..PttaConfig::default()
                }),
            );
            metrics.push(out.metrics);
        }

        let rows: Vec<Vec<String>> = m_values
            .iter()
            .zip(&metrics)
            .map(|(&m, met)| {
                vec![
                    format!("M = {m}"),
                    format!("{:.4}", met.rec1),
                    format!("{:.4}", met.rec5),
                    format!("{:.4}", met.rec10),
                    format!("{:.4}", met.mrr),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(&["Capacity", "Rec@1", "Rec@5", "Rec@10", "MRR"], &rows)
        );

        results.push(CityCurve {
            city: city.stats.name.clone(),
            m_values: m_values.clone(),
            metrics,
        });
    }

    write_json("fig7_capacity", &results);
}
