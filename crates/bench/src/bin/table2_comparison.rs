//! E3 — Table II: performance comparison across datasets and methods.
//!
//! Trains one member of each baseline family plus AdaMove per city and
//! reports Rec@{1,5,10} and MRR on the test split. Baseline substitutions
//! (which implemented model stands in for which paper row) are documented
//! in DESIGN.md §1; paper Rec@1 values are printed alongside for shape
//! comparison.
//!
//! Usage: `cargo run --release -p adamove-bench --bin table2_comparison
//!         [--scale small|paper] [--seed N] [--city nyc|tky|lymob] [--quick]
//!         [--threads N] [--batch N] [--metrics path.json]`
//!
//! Serving telemetry (per-phase latency percentiles, throughput, thread
//! count) is exported through the obs registry to `--metrics`, defaulting
//! to `BENCH_serving.json` at the workspace root.
//!
//! Evaluation fans out over `--threads` workers (default: available
//! parallelism), each fusing up to `--batch` same-length samples into one
//! device-level forward. Metrics are bit-identical at any thread count and
//! batch size; when `--threads > 1` or `--batch > 1` this binary runs
//! `adamove-testkit`'s differential oracles on the AdaMove evaluation —
//! sequential vs parallel and per-sample vs batched, metrics and
//! per-sample ranks — as a self-check.

use adamove::{
    evaluate_batched, evaluate_fn_par, EncoderKind, EvalOutcome, InferenceMode, Metrics, PttaConfig,
};
use adamove_autograd::ParamStore;
use adamove_baselines::heuristic::HeuristicWeights;
use adamove_baselines::{DeepMove, HeuristicMob, MarkovBaseline, PopularityBaseline, SeqBaseline};
use adamove_bench::harness::{prepare_city, sample_caps, train_adamove, ExperimentArgs};
use adamove_bench::report::{metrics_row, render_table, write_json, write_serving_metrics};
use adamove_mobility::CityPreset;
use adamove_testkit::{check_batched_equivalence, check_parallel_equivalence};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct MethodResult {
    method: String,
    paper_rec1: Option<f32>,
    metrics: Metrics,
}

#[derive(Serialize)]
struct CityResult {
    city: String,
    methods: Vec<MethodResult>,
}

/// Paper Table II Rec@1 values for the rows we reproduce directly.
fn paper_rec1(city: CityPreset, method: &str) -> Option<f32> {
    let v = match (city, method) {
        (CityPreset::Nyc, "LSTM") => 0.2156,
        (CityPreset::Nyc, "DeepMove") => 0.2317,
        (CityPreset::Nyc, "MHSA") => 0.2250,
        (CityPreset::Nyc, "LLM-Mob*") => 0.1929,
        (CityPreset::Nyc, "AdaMove (Ours)") => 0.2707,
        (CityPreset::Tky, "LSTM") => 0.2137,
        (CityPreset::Tky, "DeepMove") => 0.2339,
        (CityPreset::Tky, "MHSA") => 0.2379,
        (CityPreset::Tky, "LLM-Mob*") => 0.1626,
        (CityPreset::Tky, "AdaMove (Ours)") => 0.2518,
        (CityPreset::Lymob, "LSTM") => 0.2817,
        (CityPreset::Lymob, "DeepMove") => 0.2932,
        (CityPreset::Lymob, "MHSA") => 0.2973,
        (CityPreset::Lymob, "LLM-Mob*") => 0.2131,
        (CityPreset::Lymob, "AdaMove (Ours)") => 0.3125,
        _ => return None,
    };
    Some(v)
}

fn main() {
    let args = ExperimentArgs::parse();
    let (max_train, max_test) = sample_caps(args.scale);
    let mut results = Vec::new();
    let mut serving: Vec<(String, EvalOutcome)> = Vec::new();

    for preset in args.cities() {
        let city = prepare_city(preset, args.scale, args.seed, max_train, max_test);
        println!(
            "\n=== {} ({} users, {} locations, {} train / {} test samples) ===\n",
            city.stats.name,
            city.stats.num_users,
            city.stats.num_locations,
            city.train.len(),
            city.test.len()
        );
        let num_locations = city.processed.num_locations;
        let num_users = city.processed.num_users() as u32;
        let mut methods: Vec<MethodResult> = Vec::new();

        // ---- statistical baselines ------------------------------------
        let markov = MarkovBaseline::fit(num_locations as usize, &city.train);
        let markov_out = evaluate_fn_par(&city.test, args.threads, |s| markov.predict(s));
        methods.push(MethodResult {
            method: "Markov (≈NLPMM)".into(),
            paper_rec1: None,
            metrics: markov_out.metrics,
        });

        let pop = PopularityBaseline::fit(num_locations as usize, &city.train);
        let pop_out = evaluate_fn_par(&city.test, args.threads, |s| pop.predict(s));
        methods.push(MethodResult {
            method: "Popularity".into(),
            paper_rec1: None,
            metrics: pop_out.metrics,
        });

        // ---- LLM-Mob substitute ----------------------------------------
        let heuristic = HeuristicMob::fit(
            num_locations as usize,
            &city.train,
            HeuristicWeights::default(),
        );
        let h_out = evaluate_fn_par(&city.test, args.threads, |s| heuristic.predict(s));
        methods.push(MethodResult {
            method: "LLM-Mob*".into(),
            paper_rec1: paper_rec1(preset, "LLM-Mob*"),
            metrics: h_out.metrics,
        });

        // ---- LSTM (recent-only neural) ---------------------------------
        let mut rng = StdRng::seed_from_u64(args.seed);
        let mut lstm_store = ParamStore::new();
        let lstm = SeqBaseline::new(
            &mut lstm_store,
            "LSTM",
            EncoderKind::Lstm,
            args.model_config(0.0),
            num_locations,
            num_users,
            None,
            &mut rng,
        );
        eprintln!("training LSTM...");
        lstm.train(
            &mut lstm_store,
            &city.train,
            &city.val,
            args.training_config(),
        );
        let lstm_out = evaluate_fn_par(&city.test, args.threads, |s| lstm.predict(&lstm_store, s));
        methods.push(MethodResult {
            method: "LSTM".into(),
            paper_rec1: paper_rec1(preset, "LSTM"),
            metrics: lstm_out.metrics,
        });

        // ---- MHSA (transformer with history context) -------------------
        let mut mhsa_store = ParamStore::new();
        let mhsa = SeqBaseline::new(
            &mut mhsa_store,
            "MHSA",
            EncoderKind::Transformer,
            args.model_config(0.0),
            num_locations,
            num_users,
            Some(20),
            &mut rng,
        );
        eprintln!("training MHSA...");
        mhsa.train(
            &mut mhsa_store,
            &city.train,
            &city.val,
            args.training_config(),
        );
        let mhsa_out = evaluate_fn_par(&city.test, args.threads, |s| mhsa.predict(&mhsa_store, s));
        methods.push(MethodResult {
            method: "MHSA".into(),
            paper_rec1: paper_rec1(preset, "MHSA"),
            metrics: mhsa_out.metrics,
        });

        // ---- DeepMove (two-branch) --------------------------------------
        let mut dm_store = ParamStore::new();
        let deepmove = DeepMove::new(
            &mut dm_store,
            args.model_config(0.0),
            num_locations,
            num_users,
            &mut rng,
        );
        eprintln!("training DeepMove...");
        deepmove.train(
            &mut dm_store,
            &city.train,
            &city.val,
            args.training_config(),
        );
        let dm_out = evaluate_fn_par(&city.test, args.threads, |s| deepmove.predict(&dm_store, s));
        methods.push(MethodResult {
            method: "DeepMove".into(),
            paper_rec1: paper_rec1(preset, "DeepMove"),
            metrics: dm_out.metrics,
        });

        // ---- AdaMove = LightMob (contrastive) + PTTA --------------------
        eprintln!("training AdaMove (LightMob + contrastive)...");
        let adamove = train_adamove(&city, EncoderKind::Lstm, &args, None);
        let ptta_mode = InferenceMode::Ptta(PttaConfig::default());
        let ada_out = evaluate_batched(
            &adamove.model,
            &adamove.store,
            &city.test,
            &ptta_mode,
            args.threads,
            args.batch,
        );
        if args.threads > 1 {
            // Self-check via the shared testkit oracle: full coverage,
            // metrics bit-identical to a sequential run, and every
            // per-sample rank equal (contiguous chunks + exact
            // accumulator merge).
            check_parallel_equivalence(
                &adamove.model,
                &adamove.store,
                &city.test,
                &ptta_mode,
                args.threads,
            )
            .unwrap_or_else(|e| panic!("parallel self-check failed: {e}"));
            eprintln!(
                "threads={}: metrics and per-sample ranks bit-identical to sequential run",
                args.threads
            );
        }
        if args.batch > 1 {
            // Same contract for the batched device path: fusing samples
            // into one forward may change only wall-clock, never a bit.
            check_batched_equivalence(
                &adamove.model,
                &adamove.store,
                &city.test,
                &ptta_mode,
                args.threads,
                args.batch,
            )
            .unwrap_or_else(|e| panic!("batched self-check failed: {e}"));
            eprintln!(
                "batch={}: metrics and per-sample ranks bit-identical to per-sample run",
                args.batch
            );
        }
        methods.push(MethodResult {
            method: "AdaMove (Ours)".into(),
            paper_rec1: paper_rec1(preset, "AdaMove (Ours)"),
            metrics: ada_out.metrics,
        });

        // ---- render ------------------------------------------------------
        let mut rows: Vec<Vec<String>> = Vec::new();
        for m in &methods {
            let mut row = metrics_row(&m.method, &m.metrics);
            row.push(
                m.paper_rec1
                    .map(|v| format!("{v:.4}"))
                    .unwrap_or_else(|| "-".into()),
            );
            rows.push(row);
        }
        println!(
            "{}",
            render_table(
                &["Method", "Rec@1", "Rec@5", "Rec@10", "MRR", "paper Rec@1"],
                &rows
            )
        );

        // Shape check: AdaMove vs the best baseline *from the paper's
        // Table II set* (Markov/Popularity are extra statistical references
        // the paper does not compare against).
        let paper_set = ["LSTM", "MHSA", "DeepMove", "LLM-Mob*"];
        let best_baseline = methods
            .iter()
            .filter(|m| paper_set.contains(&m.method.as_str()))
            .map(|m| m.metrics.rec1)
            .fold(0.0f32, f32::max);
        let ours = methods.last().unwrap().metrics.rec1;
        println!(
            "AdaMove vs best baseline Rec@1: {ours:.4} vs {best_baseline:.4} ({:+.1}%)",
            (ours / best_baseline.max(1e-9) - 1.0) * 100.0
        );
        println!(
            "AdaMove eval ({} thread{}, batch {}): {}\n",
            args.threads,
            if args.threads == 1 { "" } else { "s" },
            args.batch,
            ada_out.latency.row()
        );

        serving.push((format!("adamove:{}", city.stats.name), ada_out));
        results.push(CityResult {
            city: city.stats.name.clone(),
            methods,
        });
    }

    write_json("table2_comparison", &results);
    let phases: Vec<(String, &EvalOutcome)> = serving.iter().map(|(n, o)| (n.clone(), o)).collect();
    write_serving_metrics(args.threads, &phases, &[], args.metrics.as_deref());
}
