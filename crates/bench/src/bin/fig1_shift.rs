//! E2 — Fig. 1(b)/(c): temporal shift diagnostics.
//!
//! (b) one user's visit heatmap over biweekly periods — locations appear
//! and disappear over time; (c) population-level cosine similarity between
//! each biweekly visit distribution and the first-three-months historical
//! distribution — the decay curve motivating test-time adaptation.
//!
//! Usage: `cargo run --release -p adamove-bench --bin fig1_shift [--seed N]`

use adamove_bench::harness::ExperimentArgs;
use adamove_bench::report::write_json;
use adamove_mobility::analysis::{similarity_decay, user_heatmap, SimilarityPoint};
use adamove_mobility::synth::{generate, Scale};
use adamove_mobility::CityPreset;
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    heatmap_locations: Vec<u32>,
    heatmap_counts: Vec<Vec<f32>>,
    decay: Vec<(i64, f32)>,
}

fn main() {
    let args = ExperimentArgs::parse();
    // Fig. 1 uses Foursquare over ~a year; mirror that horizon.
    let mut cfg = CityPreset::Nyc.config(Scale::Small);
    cfg.days = 330;
    cfg.num_users = 80;
    cfg.shift_at = 0.45; // shifts land after the 90-day history window
    cfg.seed = cfg.seed.wrapping_add(args.seed);
    let ds = generate(&cfg);

    // ---- Fig. 1(b): one user's heatmap -------------------------------
    // Pick the user with the most check-ins for a readable picture.
    let user = ds
        .trajectories
        .iter()
        .enumerate()
        .max_by_key(|(_, t)| t.len())
        .map(|(i, _)| i)
        .unwrap();
    let (locs, heat) = user_heatmap(
        &ds.trajectories[user].points,
        ds.num_locations,
        cfg.days,
        16,
    );
    println!("Fig. 1(b): visit heatmap for user {user} (rows = top locations, cols = biweekly periods)\n");
    let periods = heat.cols();
    print!("{:>8} |", "loc");
    for p in 0..periods {
        print!("{:>4}", p);
    }
    println!();
    println!("{}", "-".repeat(10 + 4 * periods));
    for (r, &l) in locs.iter().enumerate() {
        print!("{l:>8} |");
        for c in 0..periods {
            let v = heat.get(r, c);
            let glyph = match v as u32 {
                0 => "   .",
                1..=2 => "   -",
                3..=6 => "   o",
                7..=12 => "   O",
                _ => "   #",
            };
            print!("{glyph}");
        }
        println!();
    }

    // ---- Fig. 1(c): similarity decay ----------------------------------
    let decay: Vec<SimilarityPoint> = similarity_decay(&ds, 90);
    println!("\nFig. 1(c): mobility similarity vs. historical distribution (first 90 days)\n");
    println!("{:>6}  {:>10}  curve", "week", "similarity");
    for p in &decay {
        let bar = "#".repeat((p.similarity * 40.0).max(0.0) as usize);
        println!("{:>6}  {:>10.4}  {bar}", p.week, p.similarity);
    }
    if let (Some(first), Some(last)) = (decay.first(), decay.last()) {
        println!(
            "\nSimilarity decays from {:.3} to {:.3} — the Fig. 1(c) shape (paper: below 0.5 by ~week 12 after history).",
            first.similarity, last.similarity
        );
    }

    let record = Record {
        heatmap_locations: locs,
        heatmap_counts: (0..heat.rows()).map(|r| heat.row(r).to_vec()).collect(),
        decay: decay.iter().map(|p| (p.week, p.similarity)).collect(),
    };
    write_json("fig1_shift", &record);
}
