//! E4 — Fig. 4: ablation on model variants.
//!
//! Variants (per §IV-C):
//! - **Base Model** — plain LSTM base model, frozen inference;
//! - **w/o LightMob** — base model (no contrastive training) + PTTA;
//! - **w/o PTTA** — LightMob (contrastive training), frozen inference;
//! - **T3A** — base model + the T3A comparator;
//! - **w/ ent** — AdaMove with entropy importance instead of similarity;
//! - **w/ pseudo-label** — AdaMove with predicted instead of real labels;
//! - **AdaMove** — the full model.
//!
//! Usage: `cargo run --release -p adamove-bench --bin fig4_ablation
//!         [--scale small|paper] [--seed N] [--city ...] [--quick] [--threads N]`
//!
//! All frozen/PTTA variants fan out over `--threads` workers with
//! bit-identical metrics; the T3A comparator is stateful across the test
//! stream and always runs sequentially.

use adamove::{
    evaluate_par, EncoderKind, ImportanceStrategy, InferenceMode, LabelStrategy, Metrics,
    PttaConfig, T3aConfig,
};
use adamove_bench::harness::{prepare_city, sample_caps, train_adamove, ExperimentArgs};
use adamove_bench::report::{metrics_row, render_table, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct VariantResult {
    variant: String,
    metrics: Metrics,
}

#[derive(Serialize)]
struct CityResult {
    city: String,
    variants: Vec<VariantResult>,
}

fn main() {
    let args = ExperimentArgs::parse();
    let (max_train, max_test) = sample_caps(args.scale);
    let mut results = Vec::new();

    for preset in args.cities() {
        let city = prepare_city(preset, args.scale, args.seed, max_train, max_test);
        println!("\n=== {} ===\n", city.stats.name);

        // Two trained models: the base model (lambda = 0) and LightMob.
        eprintln!("training base model (lambda = 0)...");
        let base = train_adamove(&city, EncoderKind::Lstm, &args, Some(0.0));
        eprintln!("training LightMob (contrastive)...");
        let light = train_adamove(&city, EncoderKind::Lstm, &args, None);

        let ptta = InferenceMode::Ptta(PttaConfig::default());
        let with_ent = InferenceMode::Ptta(PttaConfig {
            importance: ImportanceStrategy::Entropy,
            ..PttaConfig::default()
        });
        let with_pseudo = InferenceMode::Ptta(PttaConfig {
            labels: LabelStrategy::Pseudo,
            ..PttaConfig::default()
        });
        let t3a = InferenceMode::T3a(T3aConfig::default());

        let variants: Vec<(String, Metrics)> = vec![
            (
                "Base Model".into(),
                evaluate_par(
                    &base.model,
                    &base.store,
                    &city.test,
                    &InferenceMode::Frozen,
                    args.threads,
                )
                .metrics,
            ),
            (
                "T3A".into(),
                evaluate_par(&base.model, &base.store, &city.test, &t3a, args.threads).metrics,
            ),
            (
                "w/o LightMob".into(),
                evaluate_par(&base.model, &base.store, &city.test, &ptta, args.threads).metrics,
            ),
            (
                "w/o PTTA".into(),
                evaluate_par(
                    &light.model,
                    &light.store,
                    &city.test,
                    &InferenceMode::Frozen,
                    args.threads,
                )
                .metrics,
            ),
            (
                "w/ ent".into(),
                evaluate_par(
                    &light.model,
                    &light.store,
                    &city.test,
                    &with_ent,
                    args.threads,
                )
                .metrics,
            ),
            (
                "w/ pseudo-label".into(),
                evaluate_par(
                    &light.model,
                    &light.store,
                    &city.test,
                    &with_pseudo,
                    args.threads,
                )
                .metrics,
            ),
            (
                "AdaMove".into(),
                evaluate_par(&light.model, &light.store, &city.test, &ptta, args.threads).metrics,
            ),
        ];

        let rows: Vec<Vec<String>> = variants
            .iter()
            .map(|(name, m)| metrics_row(name, m))
            .collect();
        println!(
            "{}",
            render_table(&["Variant", "Rec@1", "Rec@5", "Rec@10", "MRR"], &rows)
        );

        let get = |name: &str| variants.iter().find(|(n, _)| n == name).unwrap().1;
        println!("Shape checks (paper Fig. 4):");
        println!(
            "  w/o LightMob > Base Model: {:.4} vs {:.4}",
            get("w/o LightMob").rec1,
            get("Base Model").rec1
        );
        println!(
            "  w/o PTTA     > Base Model: {:.4} vs {:.4}",
            get("w/o PTTA").rec1,
            get("Base Model").rec1
        );
        println!(
            "  AdaMove      > T3A       : {:.4} vs {:.4} (paper: +32% Rec@1 on average)",
            get("AdaMove").rec1,
            get("T3A").rec1
        );
        println!(
            "  AdaMove      > w/ ent, w/ pseudo-label: {:.4} vs {:.4} / {:.4}",
            get("AdaMove").rec1,
            get("w/ ent").rec1,
            get("w/ pseudo-label").rec1
        );

        results.push(CityResult {
            city: city.stats.name.clone(),
            variants: variants
                .into_iter()
                .map(|(variant, metrics)| VariantResult { variant, metrics })
                .collect(),
        });
    }

    write_json("fig4_ablation", &results);
}
