//! E5 — Fig. 5: impact of different trajectory encoders.
//!
//! Trains AdaMove with each of RNN / LSTM / GRU / Transformer encoders and
//! evaluates with PTTA. The paper finds GRU strongest and the Transformer
//! weakest (trajectory sparsity starves self-attention).
//!
//! Usage: `cargo run --release -p adamove-bench --bin fig5_encoders
//!         [--scale small|paper] [--seed N] [--city ...] [--quick]`

use adamove::{evaluate, EncoderKind, InferenceMode, Metrics, PttaConfig};
use adamove_bench::harness::{prepare_city, sample_caps, train_adamove, ExperimentArgs};
use adamove_bench::report::{metrics_row, render_table, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct EncoderResult {
    encoder: String,
    metrics: Metrics,
}

#[derive(Serialize)]
struct CityResult {
    city: String,
    encoders: Vec<EncoderResult>,
}

fn main() {
    let args = ExperimentArgs::parse();
    let (max_train, max_test) = sample_caps(args.scale);
    let mut results = Vec::new();

    for preset in args.cities() {
        let city = prepare_city(preset, args.scale, args.seed, max_train, max_test);
        println!("\n=== {} ===\n", city.stats.name);

        let mut encoders = Vec::new();
        for kind in [
            EncoderKind::Rnn,
            EncoderKind::Lstm,
            EncoderKind::Gru,
            EncoderKind::Transformer,
        ] {
            eprintln!("training AdaMove with {} encoder...", kind.label());
            let trained = train_adamove(&city, kind, &args, None);
            let out = evaluate(
                &trained.model,
                &trained.store,
                &city.test,
                &InferenceMode::Ptta(PttaConfig::default()),
            );
            encoders.push(EncoderResult {
                encoder: kind.label().to_string(),
                metrics: out.metrics,
            });
        }

        let rows: Vec<Vec<String>> = encoders
            .iter()
            .map(|e| metrics_row(&e.encoder, &e.metrics))
            .collect();
        println!(
            "{}",
            render_table(&["Encoder", "Rec@1", "Rec@5", "Rec@10", "MRR"], &rows)
        );

        results.push(CityResult {
            city: city.stats.name.clone(),
            encoders,
        });
    }

    write_json("fig5_encoders", &results);
}
