//! E11 (beyond the paper) — where does the adaptation gain come from?
//!
//! Splits test users into a *shifted* cohort (large train-vs-test location
//! divergence) and a *stable* cohort, then reports frozen vs PTTA accuracy
//! per cohort. The paper's Fig. 10 tells this story for one user; this
//! binary quantifies it for the population: adaptation gains should
//! concentrate on the shifted cohort while leaving the stable cohort
//! intact.
//!
//! Usage: `cargo run --release -p adamove-bench --bin ablation_cohorts
//!         [--scale small|paper] [--seed N] [--city ...] [--quick] [--threads N]`
//!
//! Cohort metrics are accumulated per worker chunk and merged exactly, so
//! every cohort's numbers are bit-identical at any `--threads` value.

use adamove::{evaluate_by_par, EncoderKind, Metrics, Ptta, PttaConfig};
use adamove_bench::harness::{prepare_city, sample_caps, train_adamove, ExperimentArgs};
use adamove_bench::report::{render_table, write_json};
use adamove_mobility::split::split_sessions;
use serde::Serialize;
use std::collections::{HashMap, HashSet};

#[derive(Serialize)]
struct CohortRow {
    cohort: String,
    users: usize,
    frozen: Metrics,
    adapted: Metrics,
    rec1_gain_pct: f64,
}

#[derive(Serialize)]
struct CityResult {
    city: String,
    divergence_threshold: f64,
    cohorts: Vec<CohortRow>,
}

fn main() {
    let args = ExperimentArgs::parse();
    let (max_train, max_test) = sample_caps(args.scale);
    let threshold = 0.25; // fraction of test check-ins at unseen locations
    let mut results = Vec::new();

    for preset in args.cities() {
        let city = prepare_city(preset, args.scale, args.seed, max_train, max_test);
        println!("\n=== {} ===\n", city.stats.name);

        // Per-user divergence: share of test-region check-ins at locations
        // absent from that user's training region.
        let mut shifted_users: HashSet<u32> = HashSet::new();
        let mut cohort_sizes: HashMap<bool, usize> = HashMap::new();
        for u in &city.processed.users {
            let (train_r, _, test_r) = split_sessions(u.sessions.len());
            let train_locs: HashSet<u32> = u.sessions[train_r]
                .iter()
                .flatten()
                .map(|p| p.loc.0)
                .collect();
            let test_points: Vec<u32> = u.sessions[test_r]
                .iter()
                .flatten()
                .map(|p| p.loc.0)
                .collect();
            if test_points.is_empty() {
                continue;
            }
            let new = test_points
                .iter()
                .filter(|l| !train_locs.contains(l))
                .count();
            let shifted = new as f64 / test_points.len() as f64 > threshold;
            if shifted {
                shifted_users.insert(u.user.0);
            }
            *cohort_sizes.entry(shifted).or_insert(0) += 1;
        }

        eprintln!("training AdaMove...");
        let trained = train_adamove(&city, EncoderKind::Lstm, &args, None);
        let ptta = Ptta::new(PttaConfig::default());

        let frozen_by = evaluate_by_par(
            &city.test,
            args.threads,
            |s| shifted_users.contains(&s.user.0),
            |s| {
                trained
                    .model
                    .predict_scores(&trained.store, &s.recent, s.user)
            },
        );
        let adapted_by = evaluate_by_par(
            &city.test,
            args.threads,
            |s| shifted_users.contains(&s.user.0),
            |s| ptta.predict_scores(&trained.model, &trained.store, s),
        );

        let mut cohorts = Vec::new();
        let mut rows = Vec::new();
        for (&shifted, label) in [(true, "shifted"), (false, "stable")]
            .iter()
            .map(|(s, l)| (s, *l))
        {
            let (Some(frozen), Some(adapted)) = (frozen_by.get(&shifted), adapted_by.get(&shifted))
            else {
                continue;
            };
            let gain = (adapted.rec1 as f64 / (frozen.rec1 as f64).max(1e-9) - 1.0) * 100.0;
            rows.push(vec![
                label.to_string(),
                cohort_sizes.get(&shifted).copied().unwrap_or(0).to_string(),
                format!("{:.4}", frozen.rec1),
                format!("{:.4}", adapted.rec1),
                format!("{gain:+.1}%"),
            ]);
            cohorts.push(CohortRow {
                cohort: label.to_string(),
                users: cohort_sizes.get(&shifted).copied().unwrap_or(0),
                frozen: *frozen,
                adapted: *adapted,
                rec1_gain_pct: gain,
            });
        }
        println!(
            "{}",
            render_table(
                &["Cohort", "#Users", "frozen Rec@1", "PTTA Rec@1", "gain"],
                &rows
            )
        );
        println!("Expectation: the shifted cohort gains most from adaptation.\n");

        results.push(CityResult {
            city: city.stats.name.clone(),
            divergence_threshold: threshold,
            cohorts,
        });
    }

    write_json("ablation_cohorts", &results);
}
