//! E6 — Fig. 6: impact of the number of sessions `c`.
//!
//! One trained AdaMove per city, evaluated with test samples rebuilt for
//! `c ∈ {1..8}`. The paper finds performance rises with `c` then flattens
//! (NYC/LYMOB) or declines (TKY, where the shift is strongest and long
//! contexts mix stale patterns into the knowledge base).
//!
//! Usage: `cargo run --release -p adamove-bench --bin fig6_sessions
//!         [--scale small|paper] [--seed N] [--city ...] [--quick]`

use adamove::{evaluate, EncoderKind, InferenceMode, Metrics, PttaConfig};
use adamove_bench::harness::{
    prepare_city, resample_test, sample_caps, train_adamove, ExperimentArgs,
};
use adamove_bench::report::{render_table, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct CityCurve {
    city: String,
    c_values: Vec<usize>,
    metrics: Vec<Metrics>,
}

fn main() {
    let args = ExperimentArgs::parse();
    let (max_train, max_test) = sample_caps(args.scale);
    let c_values: Vec<usize> = (1..=8).collect();
    let mut results = Vec::new();

    for preset in args.cities() {
        let city = prepare_city(preset, args.scale, args.seed, max_train, max_test);
        println!("\n=== {} ===\n", city.stats.name);
        eprintln!("training AdaMove...");
        let trained = train_adamove(&city, EncoderKind::Lstm, &args, None);

        let mut metrics = Vec::new();
        for &c in &c_values {
            let test = resample_test(&city, c, max_test, args.seed);
            let out = evaluate(
                &trained.model,
                &trained.store,
                &test,
                &InferenceMode::Ptta(PttaConfig::default()),
            );
            metrics.push(out.metrics);
        }

        let rows: Vec<Vec<String>> = c_values
            .iter()
            .zip(&metrics)
            .map(|(&c, m)| {
                vec![
                    format!("c = {c}"),
                    format!("{:.4}", m.rec1),
                    format!("{:.4}", m.rec5),
                    format!("{:.4}", m.rec10),
                    format!("{:.4}", m.mrr),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(&["Context", "Rec@1", "Rec@5", "Rec@10", "MRR"], &rows)
        );

        results.push(CityCurve {
            city: city.stats.name.clone(),
            c_values: c_values.clone(),
            metrics,
        });
    }

    write_json("fig6_sessions", &results);
}
