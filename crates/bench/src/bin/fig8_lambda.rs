//! E8 — Fig. 8: impact of the contrastive trade-off `lambda`.
//!
//! Retrains LightMob for `lambda ∈ {0, 0.2, 0.4, 0.6, 0.8, 1.0}` per city
//! and evaluates with PTTA. The paper sees an inverted-U: some historical
//! memorisation helps, too much overfits stale patterns; the optimum is
//! dataset-dependent (0.8 NYC / 0.2 TKY / 0.6 LYMOB).
//!
//! Usage: `cargo run --release -p adamove-bench --bin fig8_lambda
//!         [--scale small|paper] [--seed N] [--city ...] [--quick]`

use adamove::{evaluate, EncoderKind, InferenceMode, Metrics, PttaConfig};
use adamove_bench::harness::{prepare_city, sample_caps, train_adamove, ExperimentArgs};
use adamove_bench::report::{render_table, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct CityCurve {
    city: String,
    lambdas: Vec<f32>,
    metrics: Vec<Metrics>,
}

fn main() {
    let args = ExperimentArgs::parse();
    let (max_train, max_test) = sample_caps(args.scale);
    let lambdas = vec![0.0f32, 0.2, 0.4, 0.6, 0.8, 1.0];
    let mut results = Vec::new();

    for preset in args.cities() {
        let city = prepare_city(preset, args.scale, args.seed, max_train, max_test);
        println!("\n=== {} ===\n", city.stats.name);

        let mut metrics = Vec::new();
        for &lambda in &lambdas {
            eprintln!("training with lambda = {lambda}...");
            let trained = train_adamove(&city, EncoderKind::Lstm, &args, Some(lambda));
            let out = evaluate(
                &trained.model,
                &trained.store,
                &city.test,
                &InferenceMode::Ptta(PttaConfig::default()),
            );
            metrics.push(out.metrics);
        }

        let rows: Vec<Vec<String>> = lambdas
            .iter()
            .zip(&metrics)
            .map(|(&l, m)| {
                vec![
                    format!("lambda = {l:.1}"),
                    format!("{:.4}", m.rec1),
                    format!("{:.4}", m.rec5),
                    format!("{:.4}", m.rec10),
                    format!("{:.4}", m.mrr),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(&["Trade-off", "Rec@1", "Rec@5", "Rec@10", "MRR"], &rows)
        );

        results.push(CityCurve {
            city: city.stats.name.clone(),
            lambdas: lambdas.clone(),
            metrics,
        });
    }

    write_json("fig8_lambda", &results);
}
