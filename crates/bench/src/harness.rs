//! Shared experiment plumbing: CLI args, data preparation, model training.

use adamove::history::HistoryAttention;
use adamove::{AdaMoveConfig, EncoderKind, LightMob, TrainReport, Trainer, TrainingConfig};
use adamove_autograd::ParamStore;
use adamove_mobility::synth::{self, Scale};
use adamove_mobility::{
    make_samples, preprocess, CityPreset, DatasetStats, PreprocessConfig, ProcessedDataset, Sample,
    SampleConfig, Split,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::path::PathBuf;

/// Parsed command-line arguments shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct ExperimentArgs {
    /// `--scale small` (default, laptop) or `--scale paper` (Table I sizes).
    pub scale: Scale,
    /// `--seed N` (default 42).
    pub seed: u64,
    /// `--city nyc|tky|lymob` restricts multi-city experiments.
    pub city: Option<CityPreset>,
    /// `--quick` shrinks training budgets for smoke runs.
    pub quick: bool,
    /// `--threads N` caps evaluation worker threads (default: available
    /// parallelism). Metrics are bit-identical at any value; only
    /// wall-clock changes.
    pub threads: usize,
    /// `--metrics <path.json>`: where serving telemetry (the obs-registry
    /// flat-JSON exposition) is written. Binaries that emit telemetry
    /// default to `BENCH_serving.json` at the workspace root.
    pub metrics: Option<PathBuf>,
    /// `--batch N` caps how many same-length samples each evaluation
    /// worker fuses into one device-level forward (default 32; 1 disables
    /// batching). 32 keeps a sub-batch's activations inside L1/L2 on the
    /// measured hardware; larger batches start evicting the weight slab.
    /// Like `--threads`, this changes only wall-clock: the batched path is
    /// pinned bit-identical to per-sample evaluation by the
    /// `adamove-testkit` differential oracles.
    pub batch: usize,
}

impl ExperimentArgs {
    /// Parse `std::env::args()`; panics with usage help on bad input.
    pub fn parse() -> Self {
        let mut out = Self {
            scale: Scale::Small,
            seed: 42,
            city: None,
            quick: false,
            threads: adamove::available_threads(),
            metrics: None,
            batch: 32,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    out.scale = match args.get(i).map(String::as_str) {
                        Some("small") => Scale::Small,
                        Some("paper") => Scale::Paper,
                        other => panic!("--scale small|paper (got {other:?})"),
                    };
                }
                "--seed" => {
                    i += 1;
                    out.seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--seed takes an integer");
                }
                "--city" => {
                    i += 1;
                    out.city = Some(match args.get(i).map(String::as_str) {
                        Some("nyc") => CityPreset::Nyc,
                        Some("tky") => CityPreset::Tky,
                        Some("lymob") => CityPreset::Lymob,
                        other => panic!("--city nyc|tky|lymob (got {other:?})"),
                    });
                }
                "--quick" => out.quick = true,
                "--threads" => {
                    i += 1;
                    out.threads = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &usize| n >= 1)
                        .expect("--threads takes a positive integer");
                }
                "--metrics" => {
                    i += 1;
                    out.metrics = Some(PathBuf::from(
                        args.get(i).expect("--metrics takes a file path"),
                    ));
                }
                "--batch" => {
                    i += 1;
                    out.batch = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &usize| n >= 1)
                        .expect("--batch takes a positive integer");
                }
                other => panic!("unknown argument {other}; usage: [--scale small|paper] [--seed N] [--city nyc|tky|lymob] [--quick] [--threads N] [--batch N] [--metrics path.json]"),
            }
            i += 1;
        }
        out
    }

    /// The cities this run covers.
    pub fn cities(&self) -> Vec<CityPreset> {
        match self.city {
            Some(c) => vec![c],
            None => vec![CityPreset::Nyc, CityPreset::Tky, CityPreset::Lymob],
        }
    }

    /// Training budget matched to the scale.
    pub fn training_config(&self) -> TrainingConfig {
        TrainingConfig {
            max_epochs: if self.quick { 4 } else { 12 },
            batch_size: 50,
            val_subsample: Some(400),
            seed: self.seed,
            verbose: false,
            ..TrainingConfig::default()
        }
    }

    /// Model hyperparameters matched to the scale (paper dims at paper
    /// scale; smaller at laptop scale).
    pub fn model_config(&self, lambda: f32) -> AdaMoveConfig {
        match self.scale {
            Scale::Paper => AdaMoveConfig {
                lambda,
                ..AdaMoveConfig::default()
            },
            Scale::Small => AdaMoveConfig {
                loc_dim: 32,
                time_dim: 8,
                user_dim: 12,
                hidden: 48,
                transformer_heads: 8,
                lambda,
                max_history: 40,
                ..AdaMoveConfig::default()
            },
        }
    }
}

/// §IV-A per-dataset hyperparameters: eval context length `c` and `lambda`.
pub fn city_hyperparams(city: CityPreset) -> (usize, f32) {
    match city {
        CityPreset::Nyc => (5, 0.8),
        CityPreset::Tky => (6, 0.2),
        CityPreset::Lymob => (5, 0.6),
    }
}

/// A fully prepared city: processed dataset and train/val/test samples.
#[derive(Debug, Clone)]
pub struct PreparedCity {
    /// Preset this came from.
    pub preset: CityPreset,
    /// Post-pipeline dataset.
    pub processed: ProcessedDataset,
    /// Table I statistics.
    pub stats: DatasetStats,
    /// Training samples (`c = 1`).
    pub train: Vec<Sample>,
    /// Validation samples (eval `c`).
    pub val: Vec<Sample>,
    /// Test samples (eval `c`).
    pub test: Vec<Sample>,
    /// Eval context length used.
    pub eval_c: usize,
    /// The §IV-A `lambda` for this city.
    pub lambda: f32,
}

/// Generate, preprocess and sample one city. `max_train`/`max_test` bound
/// the sample counts (deterministic subsample) so experiments stay fast at
/// laptop scale; pass `usize::MAX` for no cap.
pub fn prepare_city(
    preset: CityPreset,
    scale: Scale,
    seed: u64,
    max_train: usize,
    max_test: usize,
) -> PreparedCity {
    let mut cfg = preset.config(scale);
    cfg.seed = cfg.seed.wrapping_add(seed);
    let raw = synth::generate(&cfg);
    let processed = preprocess(&raw, &PreprocessConfig::default());
    let stats = processed.stats();
    let (eval_c, lambda) = city_hyperparams(preset);

    let mut train = make_samples(&processed, Split::Train, &SampleConfig::train());
    let mut val = make_samples(&processed, Split::Val, &SampleConfig::eval(eval_c));
    let mut test = make_samples(&processed, Split::Test, &SampleConfig::eval(eval_c));

    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    subsample(&mut train, max_train, &mut rng);
    subsample(&mut val, max_test, &mut rng);
    subsample(&mut test, max_test, &mut rng);

    PreparedCity {
        preset,
        processed,
        stats,
        train,
        val,
        test,
        eval_c,
        lambda,
    }
}

/// Rebuild this city's test samples with a different context length `c`
/// (the Fig. 6 sweep).
pub fn resample_test(city: &PreparedCity, c: usize, max_test: usize, seed: u64) -> Vec<Sample> {
    let mut test = make_samples(&city.processed, Split::Test, &SampleConfig::eval(c));
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    subsample(&mut test, max_test, &mut rng);
    test
}

fn subsample(samples: &mut Vec<Sample>, cap: usize, rng: &mut StdRng) {
    if samples.len() > cap {
        samples.shuffle(rng);
        samples.truncate(cap);
        // Restore chronological order per user for the stateful adapters.
        samples.sort_by_key(|s| (s.user.0, s.target_time.0));
    }
}

/// A trained AdaMove model (LightMob + contrastive branch weights).
pub struct TrainedAdaMove {
    /// All weights.
    pub store: ParamStore,
    /// The model handle.
    pub model: LightMob,
    /// The training-time history attention (unused at inference).
    pub attention: HistoryAttention,
    /// Training telemetry.
    pub report: TrainReport,
}

/// Train LightMob with the contrastive branch on a prepared city.
pub fn train_adamove(
    city: &PreparedCity,
    encoder: EncoderKind,
    args: &ExperimentArgs,
    lambda_override: Option<f32>,
) -> TrainedAdaMove {
    let lambda = lambda_override.unwrap_or(city.lambda);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut store = ParamStore::new();
    let config = AdaMoveConfig {
        encoder,
        ..args.model_config(lambda)
    };
    let model = LightMob::new(
        &mut store,
        config,
        city.processed.num_locations,
        city.processed.num_users() as u32,
        &mut rng,
    );
    let attention = HistoryAttention::new(&mut store, model.config.hidden, &mut rng);
    let trainer = Trainer::new(args.training_config());
    let report = trainer.fit(
        &model,
        if lambda == 0.0 {
            None
        } else {
            Some(&attention)
        },
        &mut store,
        &city.train,
        &city.val,
    );
    TrainedAdaMove {
        store,
        model,
        attention,
        report,
    }
}

/// Default sample caps per scale: keeps laptop runs in seconds-to-minutes.
pub fn sample_caps(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Small => (4500, 1200),
        Scale::Paper => (60000, 10000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_city_produces_consistent_splits() {
        let city = prepare_city(CityPreset::Nyc, Scale::Small, 1, 500, 200);
        assert!(city.stats.num_users > 20, "{:?}", city.stats);
        assert!(!city.train.is_empty());
        assert!(!city.val.is_empty());
        assert!(!city.test.is_empty());
        assert!(city.train.len() <= 500);
        assert!(city.test.len() <= 200);
        // Eval samples use the §IV-A context length.
        assert_eq!(city.eval_c, 5);
        assert_eq!(city.lambda, 0.8);
        // Location ids inside samples are within the compact vocabulary.
        let l = city.processed.num_locations;
        for s in city.train.iter().chain(&city.test) {
            assert!(s.target.0 < l);
            assert!(s.recent.iter().all(|p| p.loc.0 < l));
        }
    }

    #[test]
    fn subsample_preserves_user_chronology() {
        let city = prepare_city(CityPreset::Lymob, Scale::Small, 2, 300, 100);
        for pair in city.test.windows(2) {
            if pair[0].user == pair[1].user {
                assert!(pair[0].target_time <= pair[1].target_time);
            }
        }
    }

    #[test]
    fn resample_test_changes_context_length() {
        let city = prepare_city(CityPreset::Nyc, Scale::Small, 3, 300, 150);
        let c1 = resample_test(&city, 1, 150, 3);
        let c6 = resample_test(&city, 6, 150, 3);
        let avg =
            |v: &[Sample]| v.iter().map(|s| s.recent.len()).sum::<usize>() as f64 / v.len() as f64;
        assert!(
            avg(&c6) > avg(&c1) * 1.5,
            "c=6 inputs should be much longer: {} vs {}",
            avg(&c6),
            avg(&c1)
        );
    }

    #[test]
    fn city_hyperparams_match_section_iv_a() {
        assert_eq!(city_hyperparams(CityPreset::Nyc), (5, 0.8));
        assert_eq!(city_hyperparams(CityPreset::Tky), (6, 0.2));
        assert_eq!(city_hyperparams(CityPreset::Lymob), (5, 0.6));
    }
}
