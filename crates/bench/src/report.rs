//! Table rendering and JSON result output shared by the experiment
//! binaries. Every binary prints a human-readable table (the paper's rows)
//! and writes the same data as JSON under `results/` for EXPERIMENTS.md.

use adamove::{EvalOutcome, Metrics};
use adamove_obs::{labeled, to_flat_json, Registry};
use serde::Serialize;
use std::path::{Path, PathBuf};

/// Render a fixed-width table: header row + body rows.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// A metrics row with a label, for the standard 4-metric tables.
pub fn metrics_row(label: &str, m: &Metrics) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{:.4}", m.rec1),
        format!("{:.4}", m.rec5),
        format!("{:.4}", m.rec10),
        format!("{:.4}", m.mrr),
    ]
}

/// Directory where experiment JSON lands (workspace `results/`).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the workspace root.
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("."));
    let dir = base
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Workspace root (the parent of [`results_dir`]): default landing spot
/// for `BENCH_serving.json`.
pub fn repo_root() -> PathBuf {
    results_dir()
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Record each evaluation phase's serving telemetry into a fresh
/// [`adamove_obs::Registry`] and write the flat-JSON exposition.
///
/// Per phase: a `bench_eval_latency_ns{phase="..."}` histogram (so the
/// export carries `_p50`/`_p95`/`_p99`/`_mean`), a
/// `bench_throughput_sps{phase="..."}` gauge (wall-clock samples/s at the
/// run's thread count) and a `bench_samples_total{phase="..."}` counter;
/// plus a single `bench_threads` gauge. `extras` are free-form gauges for
/// scalar telemetry that has no per-phase shape (e.g. the recovery
/// drill's `bench_respawns` / `bench_degraded_predictions` counts).
/// `path = None` defaults to `BENCH_serving.json` at the workspace root.
pub fn write_serving_metrics(
    threads: usize,
    phases: &[(String, &EvalOutcome)],
    extras: &[(&str, f64)],
    path: Option<&Path>,
) {
    let registry = Registry::new();
    registry.gauge("bench_threads").set(threads as f64);
    for &(name, value) in extras {
        registry.gauge(name).set(value);
    }
    for (phase, out) in phases {
        let labels = [("phase", phase.as_str())];
        let hist = registry.histogram(&labeled("bench_eval_latency_ns", &labels));
        for &ns in &out.latencies_ns {
            hist.record(ns);
        }
        registry
            .gauge(&labeled("bench_throughput_sps", &labels))
            .set(out.latency.throughput);
        registry
            .counter(&labeled("bench_samples_total", &labels))
            .add(out.latency.samples as u64);
    }
    let json = to_flat_json(&registry.snapshot());
    let path = path
        .map(Path::to_path_buf)
        .unwrap_or_else(|| repo_root().join("BENCH_serving.json"));
    match std::fs::write(&path, json) {
        // lint:allow(print): CLI-facing bench harness output, reached only from the bench bin targets
        Ok(()) => println!("[serving metrics written to {}]", path.display()),
        // lint:allow(print): CLI-facing bench harness output, reached only from the bench bin targets
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Merge `registry`'s flat-JSON exposition into an existing
/// `BENCH_serving.json`-style file instead of overwriting it: fields
/// whose key starts with any of `strip_prefixes` are dropped from the
/// existing file first (they belong to the caller and are being
/// refreshed), every other field is preserved, and the union is written
/// back sorted. Uses the testkit flat-JSON codec rather than
/// `serde_json` so the merge also works under the offline dev stubs.
/// `path = None` defaults to `BENCH_serving.json` at the workspace root.
pub fn merge_serving_metrics(registry: &Registry, strip_prefixes: &[&str], path: Option<&Path>) {
    use adamove_testkit::json::{parse_flat, write_flat, Value};
    use std::collections::BTreeMap;

    let path = path
        .map(Path::to_path_buf)
        .unwrap_or_else(|| repo_root().join("BENCH_serving.json"));
    let mut fields: BTreeMap<String, Value> = match std::fs::read_to_string(&path) {
        Ok(text) => match parse_flat(&text) {
            Ok(existing) => existing
                .into_iter()
                .filter(|(k, _)| !strip_prefixes.iter().any(|p| k.starts_with(p)))
                .collect(),
            Err(e) => {
                // lint:allow(print): CLI-facing bench harness output, reached only from the bench bin targets
                eprintln!(
                    "warning: {} unparseable ({e}), rewriting fresh",
                    path.display()
                );
                BTreeMap::new()
            }
        },
        Err(_) => BTreeMap::new(),
    };
    let fresh = to_flat_json(&registry.snapshot());
    match parse_flat(&fresh) {
        Ok(new_fields) => fields.extend(new_fields),
        // lint:allow(print): CLI-facing bench harness output, reached only from the bench bin targets
        Err(e) => eprintln!("warning: could not re-parse fresh exposition: {e}"),
    }
    match std::fs::write(&path, write_flat(&fields)) {
        // lint:allow(print): CLI-facing bench harness output, reached only from the bench bin targets
        Ok(()) => println!("[serving metrics merged into {}]", path.display()),
        // lint:allow(print): CLI-facing bench harness output, reached only from the bench bin targets
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Write an experiment's JSON record to `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                // lint:allow(print): CLI-facing bench harness output, reached only from the bench bin targets
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                // lint:allow(print): CLI-facing bench harness output, reached only from the bench bin targets
                println!("\n[results written to {}]", path.display());
            }
        }
        // lint:allow(print): CLI-facing bench harness output, reached only from the bench bin targets
        Err(e) => eprintln!("warning: could not serialise {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["Method", "Rec@1"],
            &[
                vec!["LSTM".into(), "0.2156".into()],
                vec!["AdaMove (Ours)".into(), "0.2707".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // Both data rows start their second column at the same offset.
        let col = lines[2].find("0.2156").unwrap();
        assert_eq!(lines[3].find("0.2707").unwrap(), col);
    }

    #[test]
    fn metrics_row_formats_four_decimals() {
        let m = Metrics {
            rec1: 0.5,
            rec5: 0.25,
            rec10: 0.125,
            mrr: 0.3333,
            count: 10,
        };
        let row = metrics_row("X", &m);
        assert_eq!(row, vec!["X", "0.5000", "0.2500", "0.1250", "0.3333"]);
    }

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.ends_with("results"));
        assert!(d.exists());
    }

    #[test]
    fn serving_metrics_json_has_required_keys() {
        use adamove::LatencyProfile;
        use std::time::Duration;

        let outcome = EvalOutcome {
            metrics: Metrics {
                rec1: 0.5,
                rec5: 0.5,
                rec10: 0.5,
                mrr: 0.5,
                count: 3,
            },
            avg_latency_us: 2.0,
            total_time: Duration::from_millis(1),
            latency: LatencyProfile::from_nanos(
                vec![1_000, 2_000, 3_000],
                Duration::from_millis(1),
            ),
            latencies_ns: vec![1_000, 2_000, 3_000],
        };
        let path = std::env::temp_dir().join("adamove_bench_serving_test.json");
        write_serving_metrics(
            4,
            &[("eval".to_string(), &outcome)],
            &[("bench_respawns", 1.0), ("bench_degraded_predictions", 0.0)],
            Some(&path),
        );
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for key in [
            "\"bench_threads\": 4",
            "\"bench_samples_total{phase=\\\"eval\\\"}\": 3",
            "\"bench_eval_latency_ns_p99{phase=\\\"eval\\\"}\"",
            "\"bench_throughput_sps{phase=\\\"eval\\\"}\"",
            "\"bench_respawns\": 1",
            "\"bench_degraded_predictions\": 0",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
