//! Experiment harness regenerating every table and figure of the AdaMove
//! paper (see DESIGN.md §3 for the experiment index).
//!
//! Each binary in `src/bin/` prints the paper's rows/series and writes a
//! JSON record under `results/`. Shared plumbing lives here:
//!
//! - [`harness`] — CLI parsing (`--scale small|paper`, `--seed`, `--city`),
//!   dataset preparation (synthesis -> preprocessing -> splits -> samples)
//!   and model training helpers;
//! - [`report`] — fixed-width table rendering and JSON result output.

pub mod harness;
pub mod report;

pub use harness::{ExperimentArgs, PreparedCity, TrainedAdaMove};
