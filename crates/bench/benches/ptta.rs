//! Criterion bench for PTTA (Algorithm 1): per-sample adaptation cost as a
//! function of the recent-trajectory length `N` and the capacity `M`.
//!
//! The paper's complexity claim is `O(N log M)` for knowledge-base
//! construction plus `O(N)` pattern generation (encoder dominated) and
//! `O(L M)` weight update — overall linear in `N`. The `by_length` group
//! should therefore scale roughly linearly; the `by_capacity` group should
//! be nearly flat.

use adamove::{AdaMoveConfig, LightMob, Ptta, PttaConfig};
use adamove_autograd::ParamStore;
use adamove_mobility::{LocationId, Point, Sample, Timestamp, UserId};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn make_sample(n: usize, num_locations: u32, rng: &mut StdRng) -> Sample {
    Sample {
        user: UserId(0),
        recent: (0..n)
            .map(|i| {
                Point::new(
                    rng.gen_range(0..num_locations),
                    Timestamp::from_hours(i as i64 * 2),
                )
            })
            .collect(),
        history: vec![],
        target: LocationId(rng.gen_range(0..num_locations)),
        target_time: Timestamp::from_hours(n as i64 * 2),
    }
}

fn setup(num_locations: u32) -> (ParamStore, LightMob) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig {
            loc_dim: 32,
            time_dim: 8,
            user_dim: 12,
            hidden: 48,
            ..AdaMoveConfig::default()
        },
        num_locations,
        4,
        &mut rng,
    );
    (store, model)
}

fn bench_by_length(c: &mut Criterion) {
    let (store, model) = setup(300);
    let ptta = Ptta::new(PttaConfig::default());
    let mut rng = StdRng::seed_from_u64(11);
    let mut group = c.benchmark_group("ptta_by_length");
    for &n in &[5usize, 10, 20, 40] {
        let sample = make_sample(n, 300, &mut rng);
        group.bench_function(format!("N{n}"), |b| {
            b.iter(|| black_box(ptta.predict_scores(&model, &store, &sample)))
        });
    }
    group.finish();
}

fn bench_by_capacity(c: &mut Criterion) {
    let (store, model) = setup(300);
    let mut rng = StdRng::seed_from_u64(12);
    let sample = make_sample(30, 300, &mut rng);
    let mut group = c.benchmark_group("ptta_by_capacity");
    for &m in &[1usize, 5, 20] {
        let ptta = Ptta::new(PttaConfig {
            capacity: m,
            ..PttaConfig::default()
        });
        group.bench_function(format!("M{m}"), |b| {
            b.iter(|| black_box(ptta.predict_scores(&model, &store, &sample)))
        });
    }
    group.finish();
}

fn bench_steps(c: &mut Criterion) {
    // Isolate the adaptation overhead: frozen forward vs PTTA end-to-end.
    let (store, model) = setup(300);
    let ptta = Ptta::new(PttaConfig::default());
    let mut rng = StdRng::seed_from_u64(13);
    let sample = make_sample(25, 300, &mut rng);
    c.bench_function("frozen_forward_N25", |b| {
        b.iter(|| black_box(model.predict_scores(&store, &sample.recent, sample.user)))
    });
    c.bench_function("ptta_full_N25", |b| {
        b.iter(|| black_box(ptta.predict_scores(&model, &store, &sample)))
    });
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the full suite under a few
    // minutes on a laptop; pass --measurement-time to override.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_by_length, bench_by_capacity, bench_steps
}
criterion_main!(benches);
