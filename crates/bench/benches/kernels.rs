//! Criterion benches for the tensor/autograd substrate: GEMM variants,
//! softmax, an LSTM step forward+backward, and an embedding gather —
//! the kernels every experiment spends its time in.

use adamove_autograd::{Graph, ParamStore};
use adamove_nn::{LstmCell, Recurrent};
use adamove_tensor::init;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let a = init::normal(n, n, 1.0, &mut rng);
        let b = init::normal(n, n, 1.0, &mut rng);
        group.bench_function(format!("nn_{n}"), |bench| {
            bench.iter(|| black_box(a.matmul(&b).unwrap()))
        });
        group.bench_function(format!("nt_{n}"), |bench| {
            bench.iter(|| black_box(a.matmul_nt(&b).unwrap()))
        });
        group.bench_function(format!("tn_{n}"), |bench| {
            bench.iter(|| black_box(a.matmul_tn(&b).unwrap()))
        });
    }
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let m = init::normal(64, 512, 1.0, &mut rng);
    c.bench_function("softmax_rows_64x512", |b| {
        b.iter(|| black_box(m.softmax_rows()))
    });
}

fn bench_gather(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ParamStore::new();
    let table = store.register("emb", init::normal(5000, 48, 0.1, &mut rng));
    let indices: Vec<u32> = (0..64).map(|i| (i * 73) % 5000).collect();
    c.bench_function("gather_64_of_5000x48", |b| {
        b.iter(|| {
            let mut g = Graph::new(&store);
            black_box(g.gather(table, &indices))
        })
    });
}

fn bench_lstm_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let mut store = ParamStore::new();
    let cell = LstmCell::new(&mut store, "lstm", 72, 64, &mut rng);
    let enc = Recurrent::Lstm(cell);
    let xs = init::normal(20, 72, 1.0, &mut rng);

    c.bench_function("lstm_forward_seq20", |b| {
        b.iter(|| {
            let mut g = Graph::new(&store);
            let x = g.constant(xs.clone());
            black_box(enc.encode_last(&mut g, x))
        })
    });

    c.bench_function("lstm_forward_backward_seq20", |b| {
        b.iter(|| {
            let mut g = Graph::new(&store);
            let x = g.constant(xs.clone());
            let h = enc.encode_last(&mut g, x);
            let loss = g.mean_all(h);
            black_box(g.backward(loss))
        })
    });
}

fn bench_backward_overhead(c: &mut Criterion) {
    // Ratio of backward to forward cost for a classifier-shaped graph.
    let mut rng = StdRng::seed_from_u64(5);
    let mut store = ParamStore::new();
    let w1 = store.register("w1", init::xavier_uniform(72, 128, &mut rng));
    let w2 = store.register("w2", init::xavier_uniform(128, 300, &mut rng));
    let x = init::normal(50, 72, 1.0, &mut rng);
    let targets: Vec<u32> = (0..50).map(|i| (i * 7) % 300).collect();

    c.bench_function("mlp_forward_only", |b| {
        b.iter(|| {
            let mut g = Graph::new(&store);
            let xv = g.constant(x.clone());
            let h = g.linear(w1, None, xv);
            let t = g.tanh(h);
            let logits = g.linear(w2, None, t);
            black_box(g.cross_entropy_logits(logits, &targets))
        })
    });
    c.bench_function("mlp_forward_backward", |b| {
        b.iter(|| {
            let mut g = Graph::new(&store);
            let xv = g.constant(x.clone());
            let h = g.linear(w1, None, xv);
            let t = g.tanh(h);
            let logits = g.linear(w2, None, t);
            let loss = g.cross_entropy_logits(logits, &targets);
            black_box(g.backward(loss))
        })
    });
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the full suite under a few
    // minutes on a laptop; pass --measurement-time to override.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_matmul,
    bench_softmax,
    bench_gather,
    bench_lstm_step,
    bench_backward_overhead
}
criterion_main!(benches);
