//! Ablation bench: the two knowledge-base keepers from `adamove::kb`.
//!
//! The paper's complexity analysis argues for a priority queue
//! (`O(log M)` per overflow update); for the paper's `M = 5` a linear scan
//! is competitive because the constant dominates. This bench quantifies
//! the crossover.

use adamove::{HeapTopM, LinearTopM, TopM};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_keepers(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 256; // patterns offered per adaptation
    let dim = 48;
    let patterns: Vec<(f32, Vec<f32>)> = (0..n)
        .map(|_| {
            (
                rng.gen_range(-1.0f32..1.0),
                (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            )
        })
        .collect();

    for &m in &[5usize, 32, 128] {
        let mut group = c.benchmark_group(format!("kb_m{m}"));
        group.bench_function("heap", |b| {
            b.iter(|| {
                let mut keeper = HeapTopM::new(m);
                for (imp, p) in &patterns {
                    keeper.push(*imp, p);
                }
                black_box(keeper.len())
            })
        });
        group.bench_function("linear", |b| {
            b.iter(|| {
                let mut keeper = LinearTopM::new(m);
                for (imp, p) in &patterns {
                    keeper.push(*imp, p);
                }
                black_box(keeper.len())
            })
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the full suite under a few
    // minutes on a laptop; pass --measurement-time to override.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_keepers
}
criterion_main!(benches);
