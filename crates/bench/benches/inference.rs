//! Criterion bench for the Table III comparison: per-sample inference cost
//! of AdaMove (LightMob + PTTA, recent-only) vs DeepTTA (DeepMove + PTTA,
//! history encoded at test time), across history lengths.
//!
//! The AdaMove bars should be flat in history length (it never reads the
//! history at test time); the DeepTTA bars grow with it — that gap is the
//! paper's 28.5% average speedup, largest on dense-history LYMOB.

use adamove::{AdaMoveConfig, LightMob, Ptta, PttaConfig};
use adamove_autograd::ParamStore;
use adamove_baselines::DeepMove;
use adamove_mobility::{LocationId, Point, Sample, Timestamp, UserId};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const LOCATIONS: u32 = 300;

fn config() -> AdaMoveConfig {
    AdaMoveConfig {
        loc_dim: 32,
        time_dim: 8,
        user_dim: 12,
        hidden: 48,
        max_history: 200,
        ..AdaMoveConfig::default()
    }
}

fn sample(recent_len: usize, history_len: usize, rng: &mut StdRng) -> Sample {
    let mk = |i: usize, rng: &mut StdRng| {
        Point::new(
            rng.gen_range(0..LOCATIONS),
            Timestamp::from_hours(i as i64 * 2),
        )
    };
    Sample {
        user: UserId(0),
        history: (0..history_len).map(|i| mk(i, rng)).collect(),
        recent: (0..recent_len).map(|i| mk(history_len + i, rng)).collect(),
        target: LocationId(rng.gen_range(0..LOCATIONS)),
        target_time: Timestamp::from_hours((history_len + recent_len) as i64 * 2),
    }
}

fn bench_inference(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(21);
    let mut light_store = ParamStore::new();
    let light = LightMob::new(&mut light_store, config(), LOCATIONS, 4, &mut rng);
    let mut dm_store = ParamStore::new();
    let deepmove = DeepMove::new(&mut dm_store, config(), LOCATIONS, 4, &mut rng);
    let ptta = Ptta::new(PttaConfig::default());

    let mut group = c.benchmark_group("tta_inference");
    for &hist in &[20usize, 60, 120] {
        let s = sample(25, hist, &mut rng);
        group.bench_function(format!("adamove_hist{hist}"), |b| {
            b.iter(|| black_box(ptta.predict_scores(&light, &light_store, &s)))
        });
        group.bench_function(format!("deeptta_hist{hist}"), |b| {
            b.iter(|| black_box(ptta.predict_scores(&deepmove, &dm_store, &s)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the full suite under a few
    // minutes on a laptop; pass --measurement-time to override.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_inference
}
criterion_main!(benches);
