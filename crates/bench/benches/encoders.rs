//! Criterion bench for the Fig. 5 encoder families: forward-pass cost of
//! RNN / GRU / LSTM / Transformer trajectory encoders at typical
//! evaluation sequence lengths.

use adamove::{AdaMoveConfig, EncoderKind, LightMob};
use adamove_autograd::ParamStore;
use adamove_mobility::{Point, Timestamp, UserId};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build(kind: EncoderKind) -> (ParamStore, LightMob) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig {
            loc_dim: 32,
            time_dim: 8,
            user_dim: 12,
            hidden: 48,
            encoder: kind,
            transformer_heads: 8,
            ..AdaMoveConfig::default()
        },
        300,
        4,
        &mut rng,
    );
    (store, model)
}

fn points(n: usize, rng: &mut StdRng) -> Vec<Point> {
    (0..n)
        .map(|i| Point::new(rng.gen_range(0..300), Timestamp::from_hours(i as i64 * 2)))
        .collect()
}

fn bench_encoders(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    for kind in [
        EncoderKind::Rnn,
        EncoderKind::Gru,
        EncoderKind::Lstm,
        EncoderKind::Transformer,
    ] {
        let (store, model) = build(kind);
        let mut group = c.benchmark_group(format!("encoder_{}", kind.label()));
        for &n in &[10usize, 30] {
            let pts = points(n, &mut rng);
            group.bench_function(format!("seq{n}"), |b| {
                b.iter(|| black_box(model.predict_scores(&store, &pts, UserId(0))))
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the full suite under a few
    // minutes on a laptop; pass --measurement-time to override.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_encoders
}
criterion_main!(benches);
