//! Criterion bench for the sharded serving runtime: end-to-end throughput
//! of observe/predict traffic through [`ShardedEngine`] at 1, 2 and 4
//! shards.
//!
//! Each iteration replays the same deterministic multi-user workload
//! (interleaved observes with a predict every few steps), so the numbers
//! isolate the engine's dispatch + per-shard serving cost. On a
//! multi-core box throughput should scale with shard count until the
//! per-predict compute stops dominating channel overhead.

use adamove::{AdaMoveConfig, EngineConfig, LightMob, PttaConfig, ShardedEngine};
use adamove_autograd::ParamStore;
use adamove_mobility::{Point, Timestamp, UserId};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const LOCATIONS: u32 = 200;
const USERS: u32 = 32;
const STEPS: usize = 120;

/// One deterministic traffic trace: (user, point, predict-after?).
fn workload() -> Vec<(UserId, Point, bool)> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..STEPS)
        .map(|i| {
            let user = UserId(rng.gen_range(0..USERS));
            let point = Point::new(rng.gen_range(0..LOCATIONS), Timestamp::from_hours(i as i64));
            (user, point, i % 4 == 3)
        })
        .collect()
}

fn bench_engine(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig {
            loc_dim: 32,
            time_dim: 8,
            user_dim: 12,
            hidden: 48,
            ..AdaMoveConfig::default()
        },
        LOCATIONS,
        USERS,
        &mut rng,
    );
    let (model, store) = (Arc::new(model), Arc::new(store));
    let trace = workload();

    let mut group = c.benchmark_group("sharded_engine");
    for &shards in &[1usize, 2, 4] {
        group.bench_function(format!("serve_{shards}shards"), |b| {
            b.iter(|| {
                let engine = ShardedEngine::new(
                    Arc::clone(&model),
                    Arc::clone(&store),
                    EngineConfig {
                        shards,
                        context_sessions: 5,
                        session_hours: 72,
                        ptta: PttaConfig::default(),
                    },
                );
                for &(user, point, predict) in &trace {
                    engine.observe(user, point);
                    if predict {
                        black_box(engine.predict(user, point.time));
                    }
                }
                black_box(engine.shutdown())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the full suite under a few
    // minutes on a laptop; pass --measurement-time to override.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_engine
}
criterion_main!(benches);
