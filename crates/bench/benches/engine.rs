//! Criterion bench for the sharded serving runtime: end-to-end throughput
//! of observe/predict traffic through [`ShardedEngine`] at 1, 2 and 4
//! shards.
//!
//! Each iteration replays the same deterministic multi-user workload
//! (interleaved observes with a predict every few steps), so the numbers
//! isolate the engine's dispatch + per-shard serving cost. On a
//! multi-core box throughput should scale with shard count until the
//! per-predict compute stops dominating channel overhead.

use adamove::{
    shard_of, AdaMoveConfig, Disturbance, EngineConfig, FaultAction, LightMob, PttaConfig,
    RecoveryConfig, RequestKind, ShardedEngine,
};
use adamove_autograd::ParamStore;
use adamove_mobility::{Point, Timestamp, UserId};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const LOCATIONS: u32 = 200;
const USERS: u32 = 32;
const STEPS: usize = 120;

/// One deterministic traffic trace: (user, point, predict-after?).
fn workload() -> Vec<(UserId, Point, bool)> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..STEPS)
        .map(|i| {
            let user = UserId(rng.gen_range(0..USERS));
            let point = Point::new(rng.gen_range(0..LOCATIONS), Timestamp::from_hours(i as i64));
            (user, point, i % 4 == 3)
        })
        .collect()
}

fn bench_engine(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig {
            loc_dim: 32,
            time_dim: 8,
            user_dim: 12,
            hidden: 48,
            ..AdaMoveConfig::default()
        },
        LOCATIONS,
        USERS,
        &mut rng,
    );
    let (model, store) = (Arc::new(model), Arc::new(store));
    let trace = workload();

    let mut group = c.benchmark_group("sharded_engine");
    for &shards in &[1usize, 2, 4] {
        group.bench_function(format!("serve_{shards}shards"), |b| {
            b.iter(|| {
                let engine = ShardedEngine::new(
                    Arc::clone(&model),
                    Arc::clone(&store),
                    EngineConfig {
                        shards,
                        context_sessions: 5,
                        session_hours: 72,
                        ptta: PttaConfig::default(),
                        ..EngineConfig::default()
                    },
                );
                for &(user, point, predict) in &trace {
                    engine.observe(user, point);
                    if predict {
                        black_box(engine.predict(user, point.time));
                    }
                }
                black_box(engine.shutdown())
            })
        });
    }
    group.finish();
}

/// One-shot kill: panics `shard` at request `seq`; fires once per engine
/// because the per-slot sequence counter survives respawns.
struct KillAt {
    shard: usize,
    seq: u64,
}

impl Disturbance for KillAt {
    fn action(&self, shard: usize, seq: u64, _kind: RequestKind) -> FaultAction {
        if shard == self.shard && seq == self.seq {
            FaultAction::PanicShard
        } else {
            FaultAction::None
        }
    }
}

/// The same workload, but through a self-healing engine whose first shard
/// is killed a quarter of the way in: measures checkpoint/journal
/// overhead plus one respawn-and-replay cycle per iteration. Compare to
/// `serve_Nshards` for the cost of robustness.
fn bench_engine_recovery(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig {
            loc_dim: 32,
            time_dim: 8,
            user_dim: 12,
            hidden: 48,
            ..AdaMoveConfig::default()
        },
        LOCATIONS,
        USERS,
        &mut rng,
    );
    let (model, store) = (Arc::new(model), Arc::new(store));
    let trace = workload();

    let mut group = c.benchmark_group("sharded_engine_recovery");
    for &shards in &[1usize, 2, 4] {
        group.bench_function(format!("recover_{shards}shards"), |b| {
            b.iter(|| {
                let engine = ShardedEngine::with_disturbance(
                    Arc::clone(&model),
                    Arc::clone(&store),
                    EngineConfig {
                        shards,
                        context_sessions: 5,
                        session_hours: 72,
                        ptta: PttaConfig::default(),
                        recovery: Some(RecoveryConfig::default()),
                        ..EngineConfig::default()
                    },
                    Some(Arc::new(KillAt {
                        shard: shard_of(UserId(0), shards),
                        seq: (STEPS / (4 * shards)) as u64,
                    })),
                );
                for &(user, point, predict) in &trace {
                    engine.observe(user, point);
                    if predict {
                        black_box(engine.predict(user, point.time));
                    }
                }
                let report = engine.shutdown();
                assert!(report.healthy());
                black_box(report)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the full suite under a few
    // minutes on a laptop; pass --measurement-time to override.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_engine, bench_engine_recovery
}
criterion_main!(benches);
