//! Workspace umbrella crate for the AdaMove reproduction.
//!
//! This crate exists to host the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`. The actual library surface
//! lives in the member crates:
//!
//! - [`adamove`] — LightMob + PTTA (the paper's contribution)
//! - [`adamove_mobility`] — trajectory data model, preprocessing, synthesis
//! - [`adamove_baselines`] — comparison models (LSTM, DeepMove, MHSA, ...)
//! - [`adamove_nn`] / [`adamove_autograd`] / [`adamove_tensor`] — the
//!   from-scratch neural-network substrate

pub use adamove;
pub use adamove_autograd;
pub use adamove_baselines;
pub use adamove_mobility;
pub use adamove_nn;
pub use adamove_tensor;
