//! Cross-crate integration for the parallel runtime: the `_par` evaluation
//! entry points must be bit-identical to their sequential counterparts on
//! real pipeline data, and the sharded serving engine must match a single
//! [`StreamingPredictor`] fed the same per-user traffic — including under
//! concurrent clients.

use adamove::{
    evaluate, evaluate_by, evaluate_by_par, evaluate_par, AdaMoveConfig, EngineConfig,
    InferenceMode, LightMob, PttaConfig, ShardedEngine, StreamingPredictor,
};
use adamove_autograd::ParamStore;
use adamove_mobility::synth::{generate, Scale};
use adamove_mobility::{
    make_samples, preprocess, CityPreset, Point, PreprocessConfig, Sample, SampleConfig, Split,
    Timestamp, UserId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A small shifted city's test samples plus an (untrained) model sized for
/// it. Untrained weights are fine here: these tests check numerical
/// equivalence between execution strategies, not accuracy.
fn pipeline_world(seed: u64) -> (ParamStore, LightMob, Vec<Sample>) {
    let mut cfg = CityPreset::Nyc.config(Scale::Small);
    cfg.num_users = 25;
    cfg.days = 70;
    cfg.seed = seed;
    let raw = generate(&cfg);
    let data = preprocess(&raw, &PreprocessConfig::default());
    let mut test = make_samples(&data, Split::Test, &SampleConfig::eval(5));
    assert!(test.len() > 40, "expected a non-trivial test set");
    test.truncate(120);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig::tiny(),
        data.num_locations,
        data.num_users() as u32,
        &mut rng,
    );
    (store, model, test)
}

#[test]
fn parallel_evaluation_is_bit_identical_on_pipeline_data() {
    let (store, model, test) = pipeline_world(5);
    for mode in [
        InferenceMode::Frozen,
        InferenceMode::Ptta(PttaConfig::default()),
    ] {
        let seq = evaluate(&model, &store, &test, &mode);
        for threads in [2, 4, 9] {
            let par = evaluate_par(&model, &store, &test, &mode, threads);
            // Exact equality: rank histograms merge without float drift.
            assert_eq!(par.metrics, seq.metrics, "threads={threads}");
            assert_eq!(par.latency.samples, test.len());
        }
    }
}

#[test]
fn parallel_cohort_evaluation_matches_sequential() {
    let (store, model, test) = pipeline_world(6);
    let score = |s: &Sample| model.predict_scores(&store, &s.recent, s.user);
    let seq = evaluate_by(&test, |s| s.user.0 % 3, score);
    for threads in [2, 5] {
        let par = evaluate_by_par(&test, threads, |s| s.user.0 % 3, score);
        assert_eq!(par, seq, "threads={threads}");
    }
}

#[test]
fn sharded_engine_matches_streaming_predictor_on_pipeline_traffic() {
    // Replay every test sample's recent points as live traffic, then ask
    // both the engine and a sequential reference for each user's next
    // location at the same wall-clock time.
    let (store, model, test) = pipeline_world(7);
    let (c, t_hours) = (5usize, 72i64);
    let (model, store) = (Arc::new(model), Arc::new(store));
    let mut reference = StreamingPredictor::new(&model, &store, PttaConfig::default(), c, t_hours);
    let engine = ShardedEngine::new(
        Arc::clone(&model),
        Arc::clone(&store),
        EngineConfig {
            shards: 4,
            context_sessions: c,
            session_hours: t_hours,
            ptta: PttaConfig::default(),
            ..EngineConfig::default()
        },
    );

    let mut users: Vec<UserId> = Vec::new();
    let mut latest = Timestamp(0);
    for s in test.iter().take(60) {
        if !users.contains(&s.user) {
            users.push(s.user);
        }
        for &p in &s.recent {
            engine.observe(s.user, p);
            reference.observe(s.user, p);
            latest = latest.max(p.time);
        }
    }
    let now = Timestamp(latest.0 + 1);
    for &user in &users {
        let ours = engine.predict(user, now);
        let theirs = reference.predict(user, now);
        match (ours, theirs) {
            (Some(a), Some(b)) => {
                assert_eq!(a.scores, b.scores, "user {user:?}");
                assert_eq!(a.top, b.top);
                assert_eq!(a.window_len, b.window_len);
            }
            (None, None) => {}
            (a, b) => panic!(
                "user {user:?}: engine {:?} vs reference {:?}",
                a.is_some(),
                b.is_some()
            ),
        }
    }
    let report = engine.shutdown();
    assert_eq!(report.predictions, users.len());
    assert_eq!(report.users(), reference.active_users());
    assert_eq!(report.shards, 4);
}

#[test]
fn engine_survives_concurrent_clients_without_losing_updates() {
    // Four client threads drive disjoint users through the same engine.
    // Per-user FIFO ordering must hold regardless of cross-client timing:
    // every user's final window holds exactly their own observations.
    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ParamStore::new();
    let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), 12, 16, &mut rng);
    let engine = ShardedEngine::new(
        Arc::new(model),
        Arc::new(store),
        EngineConfig {
            shards: 3,
            context_sessions: 5,
            session_hours: 72,
            ptta: PttaConfig::default(),
            ..EngineConfig::default()
        },
    );

    const CLIENTS: u32 = 4;
    const USERS_PER_CLIENT: u32 = 4;
    const OBSERVES_PER_USER: usize = 6;
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let engine = &engine;
            scope.spawn(move || {
                for step in 0..OBSERVES_PER_USER {
                    for u in 0..USERS_PER_CLIENT {
                        let user = UserId(client * USERS_PER_CLIENT + u);
                        let p = Point::new(
                            (user.0 + step as u32) % 12,
                            Timestamp::from_hours(step as i64),
                        );
                        engine.observe(user, p);
                        // Interleave predicts with observes: each must see
                        // every earlier observe for this user.
                        let got = engine
                            .predict(user, Timestamp::from_hours(step as i64 + 1))
                            .expect("window is non-empty");
                        assert_eq!(got.window_len, step + 1, "user {user:?}");
                    }
                }
            });
        }
    });
    let report = engine.shutdown();
    let total_users = (CLIENTS * USERS_PER_CLIENT) as usize;
    assert_eq!(report.observed, total_users * OBSERVES_PER_USER);
    assert_eq!(report.predictions, total_users * OBSERVES_PER_USER);
    assert_eq!(report.users(), total_users);
    assert_eq!(report.latency.samples, report.predictions);
}
