//! Differential test: the optimised PTTA implementation against a naive,
//! straight-from-Algorithm-1 reference built independently with plain
//! vector math (full sort instead of a bounded queue, materialised Θ'
//! instead of score fix-ups).

use adamove::{AdaMoveConfig, LightMob, Ptta, PttaConfig, TtaModel};
use adamove_autograd::ParamStore;
use adamove_mobility::{LocationId, Point, Sample, Timestamp, UserId};
use adamove_tensor::stats::cosine_similarity;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Naive Algorithm 1: materialise Θ', score with a plain loop.
fn reference_ptta(
    model: &LightMob,
    store: &ParamStore,
    sample: &Sample,
    capacity: usize,
) -> Vec<f32> {
    let hiddens = model.patterns(store, sample);
    let n = hiddens.rows();
    let h_test: Vec<f32> = hiddens.row(n - 1).to_vec();
    let theta = store.value(model.theta_param()).clone();
    let bias = model
        .bias_param()
        .map(|b| store.value(b).as_slice().to_vec())
        .unwrap_or_else(|| vec![0.0; theta.cols()]);

    // Step 1+2: labelled patterns, full-sort top-M per location.
    let mut per_loc: HashMap<usize, Vec<(f32, Vec<f32>)>> = HashMap::new();
    for k in 0..n.saturating_sub(1) {
        let label = sample.recent[k + 1].loc.index();
        let pattern = hiddens.row(k).to_vec();
        let sim = cosine_similarity(&h_test, &pattern);
        per_loc.entry(label).or_default().push((sim, pattern));
    }
    // Step 3: materialise adjusted columns.
    let mut theta_adj = theta.clone();
    for (loc, mut patterns) in per_loc {
        patterns.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        patterns.truncate(capacity);
        let mut centroid = theta.col(loc);
        for (_, p) in &patterns {
            for (c, v) in centroid.iter_mut().zip(p) {
                *c += v;
            }
        }
        for c in &mut centroid {
            *c /= (patterns.len() + 1) as f32;
        }
        for (r, &v) in centroid.iter().enumerate() {
            theta_adj.set(r, loc, v);
        }
    }
    // Inference: h_test Θ' + b.
    (0..theta_adj.cols())
        .map(|l| {
            h_test
                .iter()
                .zip(theta_adj.col(l).iter())
                .map(|(&h, &t)| h * t)
                .sum::<f32>()
                + bias[l]
        })
        .collect()
}

fn build_model(num_locations: u32) -> (ParamStore, LightMob) {
    let mut rng = StdRng::seed_from_u64(77);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig::tiny(),
        num_locations,
        3,
        &mut rng,
    );
    (store, model)
}

fn make_sample(locs: &[u32], target: u32) -> Sample {
    Sample {
        user: UserId(1),
        recent: locs
            .iter()
            .enumerate()
            .map(|(i, &l)| Point::new(l, Timestamp::from_hours(i as i64 * 3)))
            .collect(),
        history: vec![],
        target: LocationId(target),
        target_time: Timestamp::from_hours(100),
    }
}

#[test]
fn optimized_matches_reference_on_fixed_cases() {
    let (store, model) = build_model(12);
    for (locs, m) in [
        (vec![1u32, 2, 3, 4, 5], 5usize),
        (vec![1, 1, 1, 1], 1),
        (vec![3, 7, 3, 7, 3, 7, 3], 2),
        (vec![0, 11], 5),
        (vec![4], 5), // single point: no patterns
    ] {
        let sample = make_sample(&locs, 0);
        let fast = Ptta::new(PttaConfig {
            capacity: m,
            ..PttaConfig::default()
        })
        .predict_scores(&model, &store, &sample);
        let slow = reference_ptta(&model, &store, &sample, m);
        for (l, (a, b)) in fast.iter().zip(&slow).enumerate() {
            assert!(
                (a - b).abs() < 1e-4,
                "capacity {m}, locs {locs:?}, column {l}: {a} vs {b}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Randomised differential check over trajectory contents and capacity.
    #[test]
    fn optimized_matches_reference_randomised(
        locs in prop::collection::vec(0u32..12, 1..15),
        capacity in 1usize..8,
    ) {
        let (store, model) = build_model(12);
        let sample = make_sample(&locs, 0);
        let fast = Ptta::new(PttaConfig { capacity, ..PttaConfig::default() })
            .predict_scores(&model, &store, &sample);
        let slow = reference_ptta(&model, &store, &sample, capacity);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    /// Adaptation never changes columns for locations absent from the
    /// observed labels.
    #[test]
    fn untouched_columns_keep_frozen_scores(
        locs in prop::collection::vec(0u32..6, 2..10),
    ) {
        let (store, model) = build_model(12);
        let sample = make_sample(&locs, 0);
        let fast = Ptta::default().predict_scores(&model, &store, &sample);
        let frozen = model.predict_scores(&store, &sample.recent, sample.user);
        let labels: std::collections::HashSet<usize> =
            locs[1..].iter().map(|&l| l as usize).collect();
        for l in 0..12usize {
            if !labels.contains(&l) {
                prop_assert!(
                    (fast[l] - frozen[l]).abs() < 1e-5,
                    "column {l} changed without evidence"
                );
            }
        }
    }
}
