//! Contract tests shared by every predictor: right score-vector length,
//! finite values, determinism, and graceful handling of degenerate inputs.

use adamove::{AdaMoveConfig, LightMob, Ptta, PttaConfig, T3a, T3aConfig};
use adamove_autograd::ParamStore;
use adamove_baselines::heuristic::HeuristicWeights;
use adamove_baselines::{DeepMove, HeuristicMob, MarkovBaseline, PopularityBaseline, SeqBaseline};
use adamove_mobility::{LocationId, Point, Sample, Timestamp, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;

const L: u32 = 14;
const U: u32 = 3;

fn sample(user: u32, locs: &[u32], hist: &[u32], target: u32) -> Sample {
    Sample {
        user: UserId(user),
        recent: locs
            .iter()
            .enumerate()
            .map(|(i, &l)| Point::new(l, Timestamp::from_hours(200 + i as i64)))
            .collect(),
        history: hist
            .iter()
            .enumerate()
            .map(|(i, &l)| Point::new(l, Timestamp::from_hours(i as i64)))
            .collect(),
        target: LocationId(target),
        target_time: Timestamp::from_hours(300),
    }
}

fn train_set() -> Vec<Sample> {
    (0..40)
        .map(|i| {
            sample(
                i % U,
                &[(i % L), ((i + 1) % L), ((i + 2) % L)],
                &[(i + 5) % L],
                (i + 3) % L,
            )
        })
        .collect()
}

fn queries() -> Vec<Sample> {
    vec![
        sample(0, &[1, 2, 3], &[7, 8], 4),
        sample(1, &[5], &[], 6),              // single-point recent
        sample(2, &[0, 0, 0, 0, 0], &[0], 0), // degenerate repetition
        sample(0, &[13, 12, 11], &[10; 50], 9),
    ]
}

/// The contract every predictor must satisfy.
fn check_contract(name: &str, mut predict: impl FnMut(&Sample) -> Vec<f32>) {
    for (i, q) in queries().iter().enumerate() {
        let scores = predict(q);
        assert_eq!(scores.len(), L as usize, "{name} query {i}: wrong length");
        assert!(
            scores.iter().all(|v| v.is_finite()),
            "{name} query {i}: non-finite scores"
        );
        let again = predict(q);
        // Stateless predictors must be deterministic per query; stateful
        // ones (T3A) are exercised separately.
        if name != "t3a" {
            assert_eq!(scores, again, "{name} query {i}: nondeterministic");
        }
    }
}

#[test]
fn markov_satisfies_contract() {
    let m = MarkovBaseline::fit(L as usize, &train_set());
    check_contract("markov", |s| m.predict(s));
}

#[test]
fn popularity_satisfies_contract() {
    let m = PopularityBaseline::fit(L as usize, &train_set());
    check_contract("popularity", |s| m.predict(s));
}

#[test]
fn heuristic_satisfies_contract() {
    let m = HeuristicMob::fit(L as usize, &train_set(), HeuristicWeights::default());
    check_contract("heuristic", |s| m.predict(s));
}

#[test]
fn lightmob_frozen_and_ptta_satisfy_contract() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ParamStore::new();
    let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), L, U, &mut rng);
    check_contract("lightmob", |s| {
        model.predict_scores(&store, &s.recent, s.user)
    });
    let ptta = Ptta::new(PttaConfig::default());
    check_contract("ptta", |s| ptta.predict_scores(&model, &store, s));
}

#[test]
fn deepmove_and_deeptta_satisfy_contract() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut store = ParamStore::new();
    let model = DeepMove::new(&mut store, AdaMoveConfig::tiny(), L, U, &mut rng);
    check_contract("deepmove", |s| model.predict(&store, s));
    let ptta = Ptta::new(PttaConfig::default());
    check_contract("deeptta", |s| ptta.predict_scores(&model, &store, s));
}

#[test]
fn seq_baselines_satisfy_contract() {
    let mut rng = StdRng::seed_from_u64(5);
    for (name, kind, tail) in [
        ("lstm", adamove::EncoderKind::Lstm, None),
        ("gru", adamove::EncoderKind::Gru, None),
        ("rnn", adamove::EncoderKind::Rnn, None),
        ("mhsa", adamove::EncoderKind::Transformer, Some(10)),
    ] {
        let mut store = ParamStore::new();
        let b = SeqBaseline::new(
            &mut store,
            name,
            kind,
            AdaMoveConfig::tiny(),
            L,
            U,
            tail,
            &mut rng,
        );
        check_contract(name, |s| b.predict(&store, s));
    }
}

#[test]
fn t3a_satisfies_contract_and_is_stateful() {
    let mut rng = StdRng::seed_from_u64(6);
    let mut store = ParamStore::new();
    let model = LightMob::new(&mut store, AdaMoveConfig::tiny(), L, U, &mut rng);
    let mut t3a = T3a::new(&model, &store, T3aConfig::default());
    check_contract("t3a", |s| t3a.adapt_and_predict(&model, &store, s));
    // State accumulated across the contract queries.
    assert!(t3a.num_supports() > 0);
}
