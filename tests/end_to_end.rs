//! Cross-crate integration: synthesis -> preprocessing -> training ->
//! test-time adaptation, end to end on a small shifted city.

use adamove::history::HistoryAttention;
use adamove::{
    evaluate, AdaMoveConfig, InferenceMode, LightMob, PttaConfig, T3aConfig, Trainer,
    TrainingConfig,
};
use adamove_autograd::ParamStore;
use adamove_mobility::synth::{generate, Scale};
use adamove_mobility::{
    make_samples, preprocess, CityPreset, PreprocessConfig, SampleConfig, Split,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct World {
    store: ParamStore,
    model: LightMob,
    test: Vec<adamove_mobility::Sample>,
}

/// Keep at most `cap` samples, taking every k-th so all users stay covered.
fn stride_cap(samples: Vec<adamove_mobility::Sample>, cap: usize) -> Vec<adamove_mobility::Sample> {
    if samples.len() <= cap {
        return samples;
    }
    let stride = samples.len().div_ceil(cap);
    samples.into_iter().step_by(stride).collect()
}

/// Train a small model on a strongly-shifted synthetic city.
fn build_world(seed: u64) -> World {
    let mut cfg = CityPreset::Nyc.config(Scale::Small);
    cfg.num_users = 25;
    cfg.days = 70;
    cfg.shift_fraction = 0.8;
    cfg.seed = seed;
    let raw = generate(&cfg);
    let data = preprocess(&raw, &PreprocessConfig::default());
    assert!(data.num_users() >= 18, "too few users survived");

    let mut train = make_samples(&data, Split::Train, &SampleConfig::train());
    let val = make_samples(&data, Split::Val, &SampleConfig::eval(5));
    let mut test = make_samples(&data, Split::Test, &SampleConfig::eval(5));
    assert!(train.len() > 400 && test.len() > 80);
    // Deterministic strided subsampling keeps this test fast in debug
    // builds while still covering every user.
    train = stride_cap(train, 900);
    test = stride_cap(test, 300);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let model = LightMob::new(
        &mut store,
        AdaMoveConfig {
            loc_dim: 12,
            time_dim: 6,
            user_dim: 6,
            hidden: 24,
            lambda: 0.6,
            max_history: 20,
            ..AdaMoveConfig::default()
        },
        data.num_locations,
        data.num_users() as u32,
        &mut rng,
    );
    let attention = HistoryAttention::new(&mut store, model.config.hidden, &mut rng);
    let trainer = Trainer::new(TrainingConfig {
        max_epochs: 4,
        batch_size: 50,
        val_subsample: Some(120),
        ..TrainingConfig::default()
    });
    let report = trainer.fit(&model, Some(&attention), &mut store, &train, &val);
    assert!(
        report.best_val_accuracy > 0.15,
        "training failed to learn anything: {}",
        report.best_val_accuracy
    );
    World { store, model, test }
}

#[test]
fn adamove_beats_frozen_on_shifted_test_data() {
    let w = build_world(1234);
    let frozen = evaluate(&w.model, &w.store, &w.test, &InferenceMode::Frozen);
    let adapted = evaluate(
        &w.model,
        &w.store,
        &w.test,
        &InferenceMode::Ptta(PttaConfig::default()),
    );
    // The headline claim: under distribution shift, PTTA improves accuracy.
    assert!(
        adapted.metrics.rec1 > frozen.metrics.rec1,
        "PTTA should beat frozen under shift: {} vs {}",
        adapted.metrics.rec1,
        frozen.metrics.rec1
    );
    assert!(adapted.metrics.rec5 >= frozen.metrics.rec5 * 0.95);
}

#[test]
fn adamove_beats_t3a_under_shift() {
    let w = build_world(99);
    let t3a = evaluate(
        &w.model,
        &w.store,
        &w.test,
        &InferenceMode::T3a(T3aConfig::default()),
    );
    let ptta = evaluate(
        &w.model,
        &w.store,
        &w.test,
        &InferenceMode::Ptta(PttaConfig::default()),
    );
    // Fig. 4: real labels + similarity beat pseudo-labels + entropy.
    assert!(
        ptta.metrics.rec1 >= t3a.metrics.rec1,
        "PTTA {} should be >= T3A {}",
        ptta.metrics.rec1,
        t3a.metrics.rec1
    );
}

#[test]
fn checkpoint_round_trip_preserves_predictions() {
    let w = build_world(7);
    let sample = &w.test[0];
    let before = w
        .model
        .predict_scores(&w.store, &sample.recent, sample.user);

    // Serialise, rebuild the same architecture fresh, load, and compare.
    let json = adamove_nn::serialize::to_json(&w.store);
    let mut rng = StdRng::seed_from_u64(999); // different init, then overwritten
    let mut store2 = ParamStore::new();
    let model2 = LightMob::new(
        &mut store2,
        w.model.config.clone(),
        w.model.num_locations,
        w.model.num_users,
        &mut rng,
    );
    let _attention2 = HistoryAttention::new(&mut store2, model2.config.hidden, &mut rng);
    adamove_nn::serialize::from_json(&mut store2, &json).unwrap();
    let after = model2.predict_scores(&store2, &sample.recent, sample.user);
    assert_eq!(before, after);
}

#[test]
fn training_is_deterministic_in_seed() {
    let a = build_world(55);
    let b = build_world(55);
    let s = &a.test[3];
    let sa = a.model.predict_scores(&a.store, &s.recent, s.user);
    let sb = b.model.predict_scores(&b.store, &s.recent, s.user);
    assert_eq!(sa, sb, "same seed must give identical weights");
}
