//! Property-based invariants across the data pipeline: arbitrary raw
//! datasets in, structural guarantees out.

use adamove_mobility::{
    make_samples, preprocess, split_sessions, Dataset, Point, PreprocessConfig, SampleConfig,
    Split, Timestamp, Trajectory, UserId,
};
use proptest::prelude::*;

/// Strategy: a random raw dataset with up to 20 users, 15 locations and
/// points across up to 40 days.
fn raw_dataset() -> impl Strategy<Value = Dataset> {
    let point =
        (0u32..15, 0i64..40 * 24).prop_map(|(loc, h)| Point::new(loc, Timestamp::from_hours(h)));
    let user_points = prop::collection::vec(point, 0..120);
    prop::collection::vec(user_points, 1..20).prop_map(|users| Dataset {
        name: "prop".into(),
        num_locations: 15,
        trajectories: users
            .into_iter()
            .enumerate()
            .map(|(i, pts)| Trajectory::new(UserId(i as u32), pts))
            .collect(),
    })
}

/// A permissive pipeline config so that random data sometimes survives.
fn lenient_config() -> PreprocessConfig {
    PreprocessConfig {
        min_users_per_location: 2,
        session_window_hours: 24,
        min_points_per_session: 2,
        min_sessions_per_user: 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn preprocessing_output_always_validates(raw in raw_dataset()) {
        let out = preprocess(&raw, &lenient_config());
        prop_assert!(out.validate().is_ok(), "{:?}", out.validate());
        // Every surviving session meets the minimum length.
        for u in &out.users {
            for s in &u.sessions {
                prop_assert!(s.len() >= 2);
            }
            prop_assert!(u.sessions.len() >= 3);
        }
    }

    #[test]
    fn preprocessing_never_invents_points(raw in raw_dataset()) {
        let out = preprocess(&raw, &lenient_config());
        let raw_points = raw.num_points();
        let kept: usize = out.users.iter().map(|u| u.num_points()).sum();
        prop_assert!(kept <= raw_points);
    }

    #[test]
    fn preprocessing_is_deterministic(raw in raw_dataset()) {
        let a = preprocess(&raw, &lenient_config());
        let b = preprocess(&raw, &lenient_config());
        prop_assert_eq!(a.users.len(), b.users.len());
        for (ua, ub) in a.users.iter().zip(&b.users) {
            prop_assert_eq!(&ua.sessions, &ub.sessions);
        }
    }

    #[test]
    fn split_regions_partition_and_order(n in 0usize..200) {
        let (tr, va, te) = split_sessions(n);
        prop_assert_eq!(tr.start, 0);
        prop_assert_eq!(tr.end, va.start);
        prop_assert_eq!(va.end, te.start);
        prop_assert_eq!(te.end, n);
        if n >= 5 {
            prop_assert!(!tr.is_empty());
            prop_assert!(!va.is_empty());
            prop_assert!(!te.is_empty());
            // The paper's proportions, within the integer rounding the
            // val/test non-emptiness clamps introduce at small n.
            prop_assert!(tr.len() * 2 >= n, "train {} of {}", tr.len(), n);
            prop_assert!(te.len() * 10 >= n, "test {} of {}", te.len(), n);
            if n >= 10 {
                prop_assert!(tr.len() * 10 >= n * 6, "train {} of {}", tr.len(), n);
            }
        }
    }

    #[test]
    fn samples_have_consistent_structure(
        raw in raw_dataset(),
        c in 1usize..5,
    ) {
        let out = preprocess(&raw, &lenient_config());
        for split in [Split::Train, Split::Val, Split::Test] {
            let samples = make_samples(&out, split, &SampleConfig::eval(c));
            for s in &samples {
                // Recent is non-empty, chronological, and precedes the target.
                prop_assert!(!s.recent.is_empty());
                prop_assert!(s.recent.windows(2).all(|w| w[0].time <= w[1].time));
                prop_assert!(s.recent.last().unwrap().time <= s.target_time);
                // History precedes recent.
                if let (Some(h), Some(r)) = (s.history.last(), s.recent.first()) {
                    prop_assert!(h.time <= r.time);
                }
                // Labels exist for every prefix.
                prop_assert_eq!(s.prefix_labels().len(), s.recent.len());
            }
        }
    }

    #[test]
    fn train_and_test_targets_never_overlap(raw in raw_dataset()) {
        let out = preprocess(&raw, &lenient_config());
        let train = make_samples(&out, Split::Train, &SampleConfig::train());
        let test = make_samples(&out, Split::Test, &SampleConfig::train());
        // Per user, all train targets are strictly before all test targets.
        for u in out.users.iter().map(|u| u.user) {
            let max_train = train
                .iter()
                .filter(|s| s.user == u)
                .map(|s| s.target_time)
                .max();
            let min_test = test
                .iter()
                .filter(|s| s.user == u)
                .map(|s| s.target_time)
                .min();
            if let (Some(a), Some(b)) = (max_train, min_test) {
                prop_assert!(a < b, "user {:?}: train target at {:?} >= test {:?}", u, a, b);
            }
        }
    }
}

#[test]
fn metrics_monotonicity_property() {
    // Rec@1 <= Rec@5 <= Rec@10 and MRR <= Rec@10, for random score vectors.
    use adamove::MetricAccumulator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(5);
    let mut acc = MetricAccumulator::new();
    for _ in 0..500 {
        let scores: Vec<f32> = (0..30).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let target = rng.gen_range(0..30);
        acc.observe(&scores, target);
    }
    let m = acc.finish();
    assert!(m.rec1 <= m.rec5 && m.rec5 <= m.rec10);
    assert!(m.mrr <= m.rec10 + 1e-6);
    assert!(m.mrr >= m.rec1 - 1e-6);
}
